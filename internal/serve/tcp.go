package serve

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"qgov/internal/trace"
	"qgov/internal/wire"
)

// TCPServer serves the binary wire protocol on persistent multiplexed
// connections — the transport fast path. The HTTP endpoint pays ~500 µs
// of connection and JSON handling per 64-decision batch; a wire frame
// costs ~100 bytes and decodes allocation-free, so a persistent
// connection pushes decisions/s toward the governor's own throughput.
//
// Each connection runs two goroutines. A reader decodes MsgObserve
// frames into pooled requests; a worker drains everything the reader has
// queued into one batch (connection-level batching: requests that arrive
// while the previous batch is deciding coalesce into the next fan-out),
// decides the batch through the same fanOut/session path as HTTP, and
// writes the MsgDecide responses back with a single flush. Requests fail
// independently, exactly like entries of the JSON batch.
//
// Connections carry the whole protocol: the observe→decide hot loop
// plus MsgControl session-lifecycle frames (create, checkpoint, delete,
// info, metrics, list) that execute as ordering barriers inside a
// drain. The HTTP JSON API stays up beside it with identical semantics
// — it is the human-facing control plane and the differential-testing
// oracle; a router drives a replica purely over this transport.
//
// The listener is generic over a connBackend: a Server answers locally
// (NewTCP); a Router answers by forwarding to the replica that owns
// each session (NewRouterTCP). Connection handling — batching, barrier
// ordering, drain — is identical either way, which is what keeps the
// routed path's semantics equal to the flat server's by construction.
type TCPServer struct {
	b   connBackend
	lis net.Listener

	mu     sync.Mutex
	conns  map[*tcpConn]struct{}
	closed bool

	wg sync.WaitGroup // one per live connection
}

// connBackend answers the two frame families a binary connection
// carries. decideBatch fills each request's answer in place; control
// executes one lifecycle op and returns an HTTP-vocabulary status with
// a JSON body.
type connBackend interface {
	decideBatch(batch []*observeReq)
	control(op byte, session string, body []byte) (status uint16, resp []byte)
	// memberEpoch is the fleet membership epoch stamped into every decide
	// reply (0 outside any fleet); direct clients compare it against
	// their own table to detect ring changes from the data plane alone.
	memberEpoch() uint32
	logf(format string, args ...any)
}

// batchStarter is the optional pipelined refinement of connBackend: the
// backend dispatches a batch asynchronously and returns a channel that
// closes when every entry is answered. A connection whose backend
// implements it (and reports a positive depth) overlaps batches — up to
// pipelineDepth() dispatched batches wait for answers while the reader
// keeps coalescing the next — instead of blocking the respond worker on
// each batch in turn. The router implements it: a relay's round trips
// to the replicas are exactly the waits worth overlapping, and one slow
// replica then stalls only its own lane instead of the connection.
//
// Requests reaching startBatch carry their raw observe payload (the
// reader captures it), so a relaying backend forwards the encoded bytes
// without re-encoding. Replies still go back in dispatch order — the
// client-visible stream is indistinguishable from the serial worker's.
type batchStarter interface {
	startBatch(batch []*observeReq) <-chan struct{}
	// pipelineDepth bounds the dispatched-but-unanswered batches per
	// connection; <= 0 disables pipelining (the serial worker runs).
	pipelineDepth() int
}

// NewTCP wraps srv with a binary-transport listener. Call Serve to
// accept; Shutdown (or Close) before srv.Close so the final checkpoint
// sees every drained decision.
func NewTCP(srv *Server, lis net.Listener) *TCPServer {
	return newTCPListener(srv, lis)
}

func newTCPListener(b connBackend, lis net.Listener) *TCPServer {
	return &TCPServer{
		b:     b,
		lis:   lis,
		conns: make(map[*tcpConn]struct{}),
	}
}

// Addr returns the listener's address.
func (t *TCPServer) Addr() net.Addr { return t.lis.Addr() }

// Serve accepts connections until the listener closes. It returns nil
// after Shutdown/Close, the accept error otherwise.
func (t *TCPServer) Serve() error {
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			if t.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &tcpConn{
			t:    t,
			conn: conn,
			reqs: make(chan *observeReq, maxDecideBatch),
		}
		if !t.register(c) {
			conn.Close()
			return nil
		}
		t.wg.Add(1)
		go c.run()
	}
}

func (t *TCPServer) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCPServer) register(c *tcpConn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *TCPServer) unregister(c *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.conns, c)
}

// snapshot returns the live connections and marks the server closed.
func (t *TCPServer) snapshotAndClose() []*tcpConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	all := make([]*tcpConn, 0, len(t.conns))
	for c := range t.conns {
		all = append(all, c)
	}
	return all
}

// drainQuiet is how long a draining connection keeps reading after
// Shutdown begins. Frames the client had written when shutdown started
// are in the kernel buffer and arrive within milliseconds; a persistent
// connection has no request boundary that would mark it "idle" (the way
// http.Server.Shutdown detects idle conns), so reading stops after this
// quiet window rather than holding every restart for the full grace.
const drainQuiet = time.Second

// Shutdown drains gracefully: the listener closes, every connection
// keeps reading for drainQuiet (bounded by ctx's deadline) so frames
// already in flight are decided and answered, responses flush, and the
// call returns once all connections have closed. When ctx expires
// first, remaining connections are cut and ctx.Err() returned. Call the
// owning Server's Close afterwards so the final checkpoint includes
// every drained decision.
func (t *TCPServer) Shutdown(ctx context.Context) error {
	conns := t.snapshotAndClose()
	t.lis.Close()

	deadline := time.Now().Add(drainQuiet)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for _, c := range conns {
		// Reads past the deadline fail; the reader goroutine then stops
		// accepting frames and the worker drains what was queued.
		_ = c.conn.SetReadDeadline(deadline)
	}

	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range conns {
			c.conn.Close()
		}
		<-done
		return ctx.Err()
	}
}

// Close cuts every connection immediately. Tests and error paths use it;
// production shutdown goes through Shutdown.
func (t *TCPServer) Close() error {
	conns := t.snapshotAndClose()
	err := t.lis.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	t.wg.Wait()
	return err
}

// observeReq is one in-flight binary request: a decoded observe message
// (or, when ctrl is set, a decoded control message) and, once handled,
// its answer. Pooled so a steady decision stream allocates nothing.
type observeReq struct {
	m       wire.Observe
	oppIdx  int32
	freqMHz int32
	errMsg  string
	// unknown marks a request whose session this server does not hold —
	// the forwarding pass may still answer it via the ring owner.
	unknown bool

	// raw is the encoded observe payload, captured only on pipelined
	// (relaying) connections: the backend forwards these bytes to the
	// owning replica with just the request id rewritten, never decoding
	// the observation. When raw is set, m carries only the relay metadata
	// (ID, Flags, Session — the session aliases raw); m.Obs is stale.
	raw []byte

	ctrl       bool
	cm         wire.Control
	ctrlStatus uint16
	ctrlBody   []byte
}

var observePool = sync.Pool{New: func() any { return new(observeReq) }}

// putObserveReq resets a request's per-use state and returns it to the
// pool. raw keeps its capacity (truncated to zero) so relay connections
// stop allocating in steady state.
func putObserveReq(r *observeReq) {
	r.errMsg = ""
	r.unknown = false
	r.ctrlBody = nil
	r.raw = r.raw[:0]
	observePool.Put(r)
}

// maxWireErrLen truncates per-request error messages on the wire; real
// governor errors are a line, anything longer is a recovered panic dump.
const maxWireErrLen = 1024

type tcpConn struct {
	t    *TCPServer
	conn net.Conn
	reqs chan *observeReq
}

func (c *tcpConn) run() {
	defer c.t.wg.Done()
	defer c.t.unregister(c)
	defer c.conn.Close()

	// A backend that can dispatch batches asynchronously gets the
	// pipelined worker; everything else keeps the serial one. The mode is
	// fixed per connection — the reader captures raw payloads only when a
	// relaying backend will forward them.
	bs, _ := c.t.b.(batchStarter)
	pipelined := bs != nil && bs.pipelineDepth() > 0

	done := make(chan struct{})
	go func() {
		defer close(done)
		if pipelined {
			c.respondPipelined(bs)
		} else {
			c.respond()
		}
	}()
	c.read(pipelined)
	close(c.reqs) // reader is done; let the worker drain and exit
	<-done
}

// read decodes frames until the stream ends. Any protocol error (bad
// magic, truncated message, unexpected frame type) drops the connection
// — framing is byte-exact, so there is no way to resynchronise. With
// raw set (a relaying backend), observe payloads are copied verbatim
// instead of decoded: the relay needs only the id and session, which
// ObserveMeta reads at fixed offsets.
func (c *tcpConn) read(raw bool) {
	r := wire.NewReader(c.conn)
	for {
		typ, payload, err := r.Next()
		if err != nil {
			// EOF (client went away), read-deadline expiry (drain), or a
			// poisoned stream: all end the reading half.
			return
		}
		req := observePool.Get().(*observeReq)
		switch typ {
		case wire.MsgObserve:
			req.ctrl = false
			if raw {
				// The reader's payload buffer is reused next frame; the
				// request owns a copy, and the decoded session aliases it.
				req.raw = append(req.raw[:0], payload...)
				req.m.ID, req.m.Flags, req.m.Session, err = wire.ObserveMeta(req.raw)
			} else {
				err = req.m.Decode(payload)
			}
		case wire.MsgControl:
			req.ctrl = true
			err = req.cm.Decode(payload)
		default:
			putObserveReq(req)
			c.t.b.logf("serve: tcp %s: unexpected frame type 0x%02x", c.conn.RemoteAddr(), typ)
			return
		}
		if err != nil {
			putObserveReq(req)
			c.t.b.logf("serve: tcp %s: %v", c.conn.RemoteAddr(), err)
			return
		}
		c.reqs <- req
	}
}

// respond is the connection's batching worker: it blocks for one request,
// coalesces everything else already queued into the same drain, decides
// runs of observes in one fan-out each, and writes all responses under
// one flush. Control frames are ordering barriers within the drain: a
// create queued before an observe is applied before that observe
// decides, so "create session, start deciding" works over one
// connection without a round trip between the two.
func (c *tcpConn) respond() {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	var queue []*observeReq
	var scratch []byte
	for {
		req, ok := <-c.reqs
		if !ok {
			return
		}
		queue = append(queue[:0], req)
	coalesce:
		for len(queue) < maxDecideBatch {
			select {
			case more, ok := <-c.reqs:
				if !ok {
					break coalesce
				}
				queue = append(queue, more)
			default:
				break coalesce
			}
		}

		// Handle the drain strictly in arrival order: each maximal run of
		// observes decides as one fan-out, and each control frame executes
		// at its position between runs (so a create queued before an
		// observe is visible to that observe's decide).
		for i := 0; i < len(queue); {
			if r := queue[i]; r.ctrl {
				r.ctrlStatus, r.ctrlBody = c.t.b.control(r.cm.Op, string(r.cm.Session), r.cm.Body)
				i++
				continue
			}
			j := i
			for j < len(queue) && !queue[j].ctrl {
				j++
			}
			c.t.b.decideBatch(queue[i:j])
			i = j
		}

		writeErr := false
		epoch := c.t.b.memberEpoch()
		for _, r := range queue {
			var err error
			if r.ctrl {
				scratch, err = wire.AppendControlReply(scratch[:0], r.cm.ID, r.ctrlStatus, r.ctrlBody)
				if err != nil {
					// The response body alone can exceed the frame bound
					// (a very large checkpoint): answer with an error
					// instead of silently dropping the request id.
					scratch, err = wire.AppendControlReply(scratch[:0], r.cm.ID,
						500, errorBody(errf("control response exceeds the frame bound")))
				}
			} else {
				// Cap the error message below the codec's 64 KiB field
				// bound: a failed AppendDecide would otherwise drop the
				// response and leave the client waiting on that id forever.
				if len(r.errMsg) > maxWireErrLen {
					r.errMsg = r.errMsg[:maxWireErrLen]
				}
				scratch, err = wire.AppendDecide(scratch[:0], r.m.ID, epoch, r.oppIdx, r.freqMHz, r.errMsg)
			}
			if err != nil {
				writeErr = true // cannot answer → the connection must die
			} else if !writeErr {
				if _, werr := bw.Write(scratch); werr != nil {
					writeErr = true
				}
			}
			putObserveReq(r)
		}
		if !writeErr {
			writeErr = bw.Flush() != nil
		}
		if writeErr {
			// The write half is gone. Close the connection so the reader
			// unblocks, then drain its queue so it never blocks sending.
			c.conn.Close()
			for r := range c.reqs {
				putObserveReq(r)
			}
			return
		}
	}
}

// flight is one dispatched unit of the pipelined worker: a run of
// requests whose answers land when done closes. Control frames ride as
// single-request flights with an already-closed done (they execute
// synchronously at their barrier), so the reply writer emits everything
// in dispatch order without telling the two kinds apart.
type flight struct {
	queue []*observeReq
	done  <-chan struct{}
}

// respondPipelined is the pipelined twin of respond: it coalesces
// arrivals exactly the same way, but dispatches each observe run
// through startBatch and moves on to the next drain instead of blocking
// for the answers — up to depth dispatched batches overlap, so a slow
// lane (one stalled replica behind a router) no longer gates frames
// bound elsewhere. A separate writer goroutine emits replies strictly
// in dispatch order, which equals arrival order: the client-visible
// stream is the serial worker's, byte for byte.
//
// Control frames keep their barrier semantics: every outstanding flight
// completes before the control executes, and its reply takes its place
// in the dispatch order.
func (c *tcpConn) respondPipelined(bs batchStarter) {
	depth := bs.pipelineDepth()
	flights := make(chan flight, depth)
	wfail := make(chan struct{}) // closed by the writer when the conn's write half dies
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		c.writeReplies(flights, wfail)
	}()

	ctrlDone := make(chan struct{})
	close(ctrlDone)

	// outstanding tracks dispatched flights whose done has not been seen
	// closed yet; the control barrier waits them out. Bounded: the
	// flights channel applies backpressure at depth, and completed
	// entries are pruned each drain.
	var outstanding []<-chan struct{}
	failed := false

	dispatch := func(f flight) {
		if failed {
			// The writer is gone; the backend still owns the requests
			// until done closes, then they pool here.
			<-f.done
			for _, r := range f.queue {
				putObserveReq(r)
			}
			return
		}
		select {
		case flights <- f:
			outstanding = append(outstanding, f.done)
		case <-wfail:
			failed = true
			<-f.done
			for _, r := range f.queue {
				putObserveReq(r)
			}
		}
	}

	for {
		req, ok := <-c.reqs
		if !ok {
			close(flights)
			<-wdone
			return
		}
		// Fresh slice per drain: its sub-slices fly as flights that
		// outlive this loop iteration.
		queue := make([]*observeReq, 0, 16)
		queue = append(queue, req)
	coalesce:
		for len(queue) < maxDecideBatch {
			select {
			case more, ok := <-c.reqs:
				if !ok {
					break coalesce
				}
				queue = append(queue, more)
			default:
				break coalesce
			}
		}

		for len(outstanding) > 0 {
			select {
			case <-outstanding[0]:
				outstanding = outstanding[1:]
				continue
			default:
			}
			break
		}
		if !failed {
			select {
			case <-wfail:
				failed = true
			default:
			}
		}

		// Dispatch the drain in arrival order: each maximal observe run
		// is one flight, each control frame a barrier between runs.
		for i := 0; i < len(queue); {
			if r := queue[i]; r.ctrl {
				for _, d := range outstanding {
					<-d
				}
				outstanding = outstanding[:0]
				if failed {
					putObserveReq(r)
				} else {
					r.ctrlStatus, r.ctrlBody = c.t.b.control(r.cm.Op, string(r.cm.Session), r.cm.Body)
					dispatch(flight{queue: queue[i : i+1], done: ctrlDone})
				}
				i++
				continue
			}
			j := i
			for j < len(queue) && !queue[j].ctrl {
				j++
			}
			if failed {
				for _, r := range queue[i:j] {
					putObserveReq(r)
				}
			} else {
				run := queue[i:j]
				dispatch(flight{queue: run, done: bs.startBatch(run)})
			}
			i = j
		}
	}
}

// writeReplies is the pipelined worker's write half: it waits each
// flight out in dispatch order and answers it. The flush policy matches
// the serial worker's one-flush-per-drain instinct: replies accumulate
// while a completed flight is immediately next, and flush when the
// pipeline has nothing ready — so a caller blocked on the oldest batch
// is never left waiting behind an unflushed buffer.
func (c *tcpConn) writeReplies(flights <-chan flight, wfail chan struct{}) {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	var scratch []byte
	failed := false
	fail := func() {
		if !failed {
			failed = true
			// Close so the reader unblocks; the dispatcher sees wfail and
			// stops dispatching.
			c.conn.Close()
			close(wfail)
		}
	}
	writeFlight := func(f flight) {
		<-f.done
		if !failed {
			epoch := c.t.b.memberEpoch()
			for _, r := range f.queue {
				var err error
				if r.ctrl {
					scratch, err = wire.AppendControlReply(scratch[:0], r.cm.ID, r.ctrlStatus, r.ctrlBody)
					if err != nil {
						scratch, err = wire.AppendControlReply(scratch[:0], r.cm.ID,
							500, errorBody(errf("control response exceeds the frame bound")))
					}
				} else {
					if len(r.errMsg) > maxWireErrLen {
						r.errMsg = r.errMsg[:maxWireErrLen]
					}
					scratch, err = wire.AppendDecide(scratch[:0], r.m.ID, epoch, r.oppIdx, r.freqMHz, r.errMsg)
				}
				if err != nil {
					fail() // cannot answer → the connection must die
				} else if !failed {
					if _, werr := bw.Write(scratch); werr != nil {
						fail()
					}
				}
			}
		}
		for _, r := range f.queue {
			putObserveReq(r)
		}
	}

	for {
		f, ok := <-flights
		if !ok {
			if !failed && bw.Flush() != nil {
				fail()
			}
			return
		}
		writeFlight(f)
	next:
		for !failed {
			select {
			case f2, ok2 := <-flights:
				if !ok2 {
					if !failed && bw.Flush() != nil {
						fail()
					}
					return
				}
				select {
				case <-f2.done:
					// Already answered — write it under the same flush.
				default:
					// The next flight is still in the air: flush what the
					// oldest callers are waiting on before blocking on it.
					if bw.Flush() != nil {
						fail()
					}
				}
				writeFlight(f2)
			default:
				break next
			}
		}
		if !failed && bw.Flush() != nil {
			fail()
		}
	}
}

// decideBatch implements connBackend for the Server: every request in
// the batch is answered through the same session/fan-out machinery as
// the HTTP path. Requests for sessions this replica does not hold are
// then offered to the forwarding pass — with a fleet table installed,
// the ring owner answers them on behalf of a stale direct client.
//
// Tracing rides the same pass. A request that arrived with a wire trace
// id (a router or client sampled it upstream) always records a "decide"
// span; otherwise the batch's own head-sampling decision applies. Tail
// capture times the whole batch when the tracer is enabled and records
// a slow "decide.batch" span plus a structured warning when the batch
// crosses the threshold — that is what catches the outlier the head
// sample almost always misses.
func (s *Server) decideBatch(batch []*observeReq) {
	tr := s.tracer
	batchTrace, _ := tr.Sample()
	timed := tr.Enabled()
	var start time.Time
	if timed {
		start = time.Now()
	}
	fanOut(len(batch), func(i int) {
		r := batch[i]
		tid := trace.TraceID(r.m.TraceID)
		if tid == 0 {
			tid = batchTrace
		}
		if tid == 0 {
			s.decideReq(r)
			return
		}
		t0 := time.Now()
		s.decideReq(r)
		tr.Record(trace.Span{
			Trace:     tid,
			Stage:     "decide",
			Origin:    s.originName(),
			Session:   string(r.m.Session),
			Start:     t0.UnixNano(),
			DurUS:     float64(time.Since(t0)) / float64(time.Microsecond),
			Forwarded: r.m.Flags&wire.FlagForwarded != 0,
			Err:       r.errMsg,
		})
	})
	s.forwardMisrouted(batch, batchTrace)
	if !timed {
		return
	}
	dur := time.Since(start)
	if tr.Slow(dur) {
		id := batchTrace
		if id == 0 {
			id = tr.ID()
		}
		tr.Record(trace.Span{
			Trace:  id,
			Stage:  "decide.batch",
			Origin: s.originName(),
			Start:  start.UnixNano(),
			DurUS:  float64(dur) / float64(time.Microsecond),
			Batch:  len(batch),
			Slow:   true,
		})
		s.log.Warn("slow decide batch",
			"trace", id.String(),
			"dur_us", float64(dur)/float64(time.Microsecond),
			"batch", len(batch))
	} else if batchTrace != 0 {
		tr.Record(trace.Span{
			Trace:  batchTrace,
			Stage:  "decide.batch",
			Origin: s.originName(),
			Start:  start.UnixNano(),
			DurUS:  float64(dur) / float64(time.Microsecond),
			Batch:  len(batch),
		})
	}
}

// decideReq answers one binary request in place — the per-request body
// decideBatch fans out, shared by its traced and untraced arms.
func (s *Server) decideReq(r *observeReq) {
	sess := s.sessionFor(r.m.Session)
	if sess == nil {
		r.unknown = true
		r.oppIdx, r.freqMHz = -1, 0
		r.errMsg = errUnknownSession(string(r.m.Session)).Error()
		return
	}
	r.unknown = false
	idx, err := sess.decide(r.m.Obs)
	if err != nil {
		r.oppIdx, r.freqMHz = -1, 0
		r.errMsg = err.Error()
		return
	}
	r.oppIdx = int32(idx)
	r.freqMHz = int32(sess.plat.table[idx].FreqMHz)
	s.decisions.Add(1)
}
