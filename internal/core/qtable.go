package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// QTable is the look-up table of Section II-A: one row per discretised
// system state, one column per V-F action, holding the learnt long-term
// pay-off of taking that action in that state.
//
// InitQ seeds unvisited entries. A mildly pessimistic value (below the
// typical reward) makes the greedy policy prefer actions it has actually
// seen succeed, leaving exploration to the ε/EPD machinery where the paper
// puts it; an optimistic value (0 with negative rewards) would force a
// blind sweep of all 19 actions per state and inflate the exploration
// counts of Table II for every method alike.
type QTable struct {
	states  int
	actions int
	q       []float64
	visits  []int
	// rowVisits caches per-state visit totals. The convergence tracker
	// reads RowVisits for every state on every decision, which made the
	// O(actions) sum the single hottest path of the decision service;
	// the cache turns it into a load.
	rowVisits []int
}

// NewQTable creates a table with every entry at initQ.
func NewQTable(states, actions int, initQ float64) *QTable {
	if states < 1 || actions < 1 {
		panic(fmt.Sprintf("core: QTable(%d states, %d actions)", states, actions))
	}
	t := &QTable{
		states:    states,
		actions:   actions,
		q:         make([]float64, states*actions),
		visits:    make([]int, states*actions),
		rowVisits: make([]int, states),
	}
	for i := range t.q {
		t.q[i] = initQ
	}
	return t
}

// recomputeRowVisits rebuilds the per-state cache from visits — the
// deserialisation paths call it after replacing the visits slice.
func (t *QTable) recomputeRowVisits() {
	if len(t.rowVisits) != t.states {
		t.rowVisits = make([]int, t.states)
	}
	for s := 0; s < t.states; s++ {
		var sum int
		for a := 0; a < t.actions; a++ {
			sum += t.visits[s*t.actions+a]
		}
		t.rowVisits[s] = sum
	}
}

// States returns |S|.
func (t *QTable) States() int { return t.states }

// Actions returns |A|.
func (t *QTable) Actions() int { return t.actions }

// Q returns the value of (state, action).
func (t *QTable) Q(state, action int) float64 { return t.q[t.idx(state, action)] }

// Visits returns how many updates (state, action) has received.
func (t *QTable) Visits(state, action int) int { return t.visits[t.idx(state, action)] }

// RowVisits returns the total updates state has received across actions.
func (t *QTable) RowVisits(state int) int {
	if state < 0 || state >= t.states {
		panic(fmt.Sprintf("core: state %d outside [0,%d)", state, t.states))
	}
	return t.rowVisits[state]
}

// VisitTotal returns the total updates across all states and actions.
func (t *QTable) VisitTotal() int {
	n := 0
	for _, v := range t.rowVisits {
		n += v
	}
	return n
}

// Update applies Bellman's optimality equation (Eq. 3):
//
//	Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·max_a' Q(s', a'))
//
// where s' is the (predicted) next state.
func (t *QTable) Update(state, action int, reward float64, nextState int, alpha, discount float64) {
	i := t.idx(state, action)
	best := t.MaxQ(nextState)
	t.q[i] = (1-alpha)*t.q[i] + alpha*(reward+discount*best)
	t.visits[i]++
	t.rowVisits[state]++
}

// UpdateSARSA applies the on-policy temporal-difference update:
//
//	Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·Q(s', a'))
//
// where a' is the action the policy has *actually chosen* for the next
// epoch — the SARSA variant of Eq. 3, kept for the on-policy ablation.
// Off-policy Q-learning bootstraps from the greedy value even while the
// ε/EPD machinery is still exploring, which inflates values reachable
// only through actions the final policy will not take; SARSA evaluates
// the policy being followed.
func (t *QTable) UpdateSARSA(state, action int, reward float64, nextState, nextAction int, alpha, discount float64) {
	i := t.idx(state, action)
	next := t.Q(nextState, nextAction)
	t.q[i] = (1-alpha)*t.q[i] + alpha*(reward+discount*next)
	t.visits[i]++
	t.rowVisits[state]++
}

// MaxQ returns max over actions of Q(state, ·).
func (t *QTable) MaxQ(state int) float64 {
	row := t.row(state)
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// BestAction returns argmax over actions of Q(state, ·); ties resolve to
// the lowest index (slowest V-F point, the energy-conservative choice).
func (t *QTable) BestAction(state int) int {
	row := t.row(state)
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// BestActionSticky returns the greedy action with hysteresis: the current
// action is kept unless a challenger beats it by more than margin. With
// stochastic rewards the Q-values of adjacent V-F points in a
// well-visited state hover within sampling noise of each other; without a
// dead-band the greedy choice flips indefinitely, which both thrashes the
// DVFS actuator and makes "the policy has stabilised" undetectable.
func (t *QTable) BestActionSticky(state, current int, margin float64) int {
	row := t.row(state)
	if current < 0 || current >= len(row) {
		return t.BestAction(state)
	}
	best := t.BestAction(state)
	if row[best] > row[current]+margin {
		return best
	}
	return current
}

// GreedyPolicy returns the best action for every state — the fingerprint
// the convergence tracker watches.
func (t *QTable) GreedyPolicy() []int {
	out := make([]int, t.states)
	for s := range out {
		out[s] = t.BestAction(s)
	}
	return out
}

// Row returns a copy of one state's action values.
func (t *QTable) Row(state int) []float64 {
	return append([]float64(nil), t.row(state)...)
}

func (t *QTable) row(state int) []float64 {
	if state < 0 || state >= t.states {
		panic(fmt.Sprintf("core: state %d outside [0,%d)", state, t.states))
	}
	return t.q[state*t.actions : (state+1)*t.actions]
}

func (t *QTable) idx(state, action int) int {
	if state < 0 || state >= t.states || action < 0 || action >= t.actions {
		panic(fmt.Sprintf("core: (%d,%d) outside %dx%d table", state, action, t.states, t.actions))
	}
	return state*t.actions + action
}

// qtableJSON is the serialisation schema for learning transfer.
type qtableJSON struct {
	States  int       `json:"states"`
	Actions int       `json:"actions"`
	Q       []float64 `json:"q"`
	Visits  []int     `json:"visits"`
}

// MarshalJSON implements json.Marshaler, so a table embeds directly in
// larger checkpoint envelopes (governor.Checkpointer payloads).
func (t *QTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(qtableJSON{States: t.states, Actions: t.actions, Q: t.q, Visits: t.visits})
}

// UnmarshalJSON implements json.Unmarshaler with the same validation Load
// applies: consistent dimensions, non-negative visit counts, and finite
// Q-values — a NaN or ±Inf entry would poison every max/argmax the policy
// computes from the row it lands in, so a corrupted table is rejected
// whole rather than imported.
func (t *QTable) UnmarshalJSON(b []byte) error {
	var j qtableJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.States < 1 || j.Actions < 1 || len(j.Q) != j.States*j.Actions || len(j.Visits) != len(j.Q) {
		return fmt.Errorf("core: Q-table is inconsistent (%d states, %d actions, %d values)",
			j.States, j.Actions, len(j.Q))
	}
	for i, q := range j.Q {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("core: Q-table is poisoned: Q(%d,%d) = %v", i/j.Actions, i%j.Actions, q)
		}
	}
	for i, v := range j.Visits {
		if v < 0 {
			return fmt.Errorf("core: Q-table is inconsistent: Visits(%d,%d) = %d", i/j.Actions, i%j.Actions, v)
		}
	}
	t.states, t.actions, t.q, t.visits = j.States, j.Actions, j.Q, j.Visits
	t.recomputeRowVisits()
	return nil
}

// Save serialises the table as JSON. Together with Load it implements the
// learning-transfer capability of Shafik et al. (TCAD'16, the paper's ref
// [12]): a table learnt for one application run seeds the next, skipping
// the exploration phase.
func (t *QTable) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("core: saving Q-table: %w", err)
	}
	return bw.Flush()
}

// Load restores a table saved with Save, rejecting inconsistent dimensions
// and non-finite Q-values (see UnmarshalJSON).
func Load(r io.Reader) (*QTable, error) {
	t := new(QTable)
	if err := json.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("core: loading Q-table: %w", err)
	}
	return t, nil
}
