// Command experiments regenerates the paper's tables and figures, and runs
// streaming scenario sweeps over the governor × workload × platform
// registry.
//
// Usage:
//
//	experiments -run all                 # everything, paper-scale
//	experiments -run table1 -frames 800  # one experiment, reduced scale
//	experiments -run fig3 -csv out/      # also write the plot series CSV
//	experiments -run sweep -match 'rtm/*/a15' -frames 400
//	experiments -run sweep -match '*/h264-football/*' -seeds 3
//
// Each experiment prints the measured values next to the numbers the paper
// reports; see EXPERIMENTS.md for how to read the comparison. Sweeps print
// one aggregate row per scenario, computed online — memory stays bounded
// by the worker count however many jobs the pattern expands to.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"qgov/internal/experiments"
	"qgov/internal/scenario"
	"qgov/internal/sim"
)

func main() {
	var (
		runWhat = flag.String("run", "all", "experiment: all|table1|table2|table3|fig3|ablations|multiapp|transfer|sweep")
		frames  = flag.Int("frames", 0, "frames per run (0: each experiment's paper-scale default)")
		seeds   = flag.Int("seeds", len(experiments.DefaultSeeds), "number of seeds to average over")
		csvDir  = flag.String("csv", "", "directory to write per-frame CSV series into (fig3)")
		match   = flag.String("match", "rtm/*/a15", "with -run sweep: scenario pattern (see internal/scenario)")
		workers = flag.Int("workers", 0, "with -run sweep: worker pool size (0: GOMAXPROCS)")
	)
	flag.Parse()

	valid := map[string]bool{
		"all": true, "table1": true, "table2": true, "table3": true,
		"fig3": true, "ablations": true, "multiapp": true, "transfer": true,
		"sweep": true,
	}
	if !valid[*runWhat] {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *runWhat)
		os.Exit(2)
	}

	seedList := experiments.DefaultSeeds
	if *seeds < len(seedList) && *seeds > 0 {
		seedList = seedList[:*seeds]
	}

	if *runWhat == "sweep" {
		if err := runSweep(*match, seedList, *frames, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() error) {
		if *runWhat != "all" && *runWhat != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		return experiments.TableI(seedList, *frames).Render(os.Stdout)
	})
	run("table2", func() error {
		return experiments.TableII(seedList, *frames).Render(os.Stdout)
	})
	run("table3", func() error {
		return experiments.TableIII(seedList, *frames).Render(os.Stdout)
	})
	run("fig3", func() error {
		fig := experiments.Fig3(seedList[0], *frames)
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, "fig3.csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := fig.WriteCSV(f); err != nil {
				return err
			}
			fmt.Printf("  series written to %s\n", path)
		}
		return nil
	})
	run("ablations", func() error {
		return experiments.RenderAblations(os.Stdout, seedList, *frames)
	})
	run("multiapp", func() error {
		return experiments.MultiApp(seedList, *frames).Render(os.Stdout)
	})
	run("transfer", func() error {
		res, err := experiments.TransferMatrix(seedList, *frames)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	})
}

// runSweep streams the scenarios × seeds product through the worker pool
// and folds each scenario's runs into an online aggregate — the 10k-job
// path: nothing per-run is retained.
func runSweep(pattern string, seeds []int64, frames, workers int) error {
	scenarios, err := scenario.Match(pattern)
	if err != nil {
		return err
	}
	fmt.Printf("sweep: %d scenarios × %d seeds = %d runs\n",
		len(scenarios), len(seeds), len(scenarios)*len(seeds))

	aggs := make(map[string]*sim.Aggregator, len(scenarios))
	for ir := range sim.Stream(scenario.JobStream(scenarios, seeds, frames), workers) {
		name := ir.Name
		if i := strings.LastIndexByte(name, '@'); i >= 0 {
			name = name[:i] // fold seeds of one scenario together
		}
		a := aggs[name]
		if a == nil {
			a = new(sim.Aggregator)
			aggs[name] = a
		}
		a.Add(ir.Result)
	}

	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\truns\tenergy J\t±σ\tnorm perf\tmiss\tconverged@")
	for _, n := range names {
		s := aggs[n].Summary()
		conv := "-"
		if s.MeanConvergeAt == s.MeanConvergeAt { // not NaN
			conv = fmt.Sprintf("%.0f", s.MeanConvergeAt)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.1f%%\t%s\n",
			n, s.Runs, s.MeanEnergyJ, s.StdEnergyJ, s.MeanNormPerf, s.MeanMissRate*100, conv)
	}
	return tw.Flush()
}
