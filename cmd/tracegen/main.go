// Command tracegen generates workload traces as CSV for inspection, for
// replay through rtmsim -trace, or for use by external tools.
//
// Usage:
//
//	tracegen -workload h264-football -out football.csv
//	tracegen -workload parsec.bodytrack -frames 2000 -seed 3 -out -
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qgov/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "", "workload to generate (see -list)")
		frames = flag.Int("frames", 0, "number of frames (0: workload default)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "-", "output file, or - for stdout")
		info   = flag.Bool("info", false, "print trace statistics instead of the CSV")
		list   = flag.Bool("list", false, "list available workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workload.Names(), "\n"))
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -workload is required (try -list)")
		os.Exit(2)
	}
	gen, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	tr := gen(*seed, *frames)

	if *info {
		st := tr.Summarize()
		fmt.Printf("name         %s\n", tr.Name)
		fmt.Printf("frames       %d @ %.4g fps (Tref %.4g ms)\n", st.Frames, tr.FPS(), tr.RefTimeS*1e3)
		fmt.Printf("threads      %d\n", st.Threads)
		fmt.Printf("mean demand  %.3g cycles/frame (critical path)\n", st.MeanCycles)
		fmt.Printf("range        %.3g .. %.3g cycles\n", st.MinCycles, st.MaxCycles)
		fmt.Printf("cv           %.3f\n", st.CVCycles)
		fmt.Printf("required f   %.0f .. %.0f MHz at Tref\n",
			st.MinCycles/tr.RefTimeS/1e6, st.MaxCycles/tr.RefTimeS/1e6)
		return
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
