// Package sim closes the loop of Fig. 2(a): it drives a governor against a
// workload trace executing on the simulated platform, one decision epoch
// per frame, and records the timing, energy and learning telemetry the
// experiments report.
//
// The engine enforces the information boundary the paper's cross-layer
// stack has on real hardware: the governor sees only PMU counter deltas,
// sensed power, temperature and the timing of the epoch that just ended —
// never the trace itself. Only the Oracle baseline (constructed with the
// trace, by definition offline) breaks that boundary.
package sim

import (
	"fmt"
	"math"

	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	Trace    workload.Trace
	Governor governor.Governor
	// Cluster to execute on; nil builds the paper's platform
	// (DefaultA15Cluster) seeded from Seed.
	Cluster *platform.Cluster
	// Seed feeds the governor's stochastic policy and, when Cluster is
	// nil, the platform's sensor noise.
	Seed int64
	// Record retains per-frame records (the Fig. 3 series); aggregates are
	// always computed.
	Record bool
}

// FrameRecord is one epoch of a recorded run.
type FrameRecord struct {
	Epoch        int
	OPPIdx       int
	FreqMHz      int
	ExecTimeS    float64 // completion incl. overheads (T_i + T_OVH)
	SlackRatio   float64 // (Tref − exec)/Tref; negative on a miss
	EnergyJ      float64
	AvgPowerW    float64
	SensorPowerW float64
	TempC        float64
	Missed       bool
	ActualCC     float64 // critical-path demand of the frame
	PredictedCC  float64 // governor's forecast for the frame (NaN if opaque)
	AvgSlackL    float64 // governor's averaged slack L (NaN if opaque)
	Epsilon      float64 // exploration probability (NaN if opaque)
}

// Result aggregates one run.
type Result struct {
	Workload string
	Governor string
	Frames   int

	EnergyJ       float64 // exact model energy over the whole run
	SensorEnergyJ float64 // energy as the on-board sensors would report it
	MeanPowerW    float64
	SimTimeS      float64 // simulated wall time

	NormPerf     float64 // mean of (T_i + T_OVH)/Tref; >1 under-performs
	MissRate     float64 // fraction of frames past the deadline
	Misses       int
	Transitions  int // DVFS transitions
	Explorations int // -1 if the governor is not a learner
	// ExplorationsToConv counts the explorations spent before the policy
	// stabilised (Table II's quantity); equal to Explorations when the
	// governor exposes no per-epoch curve or never converged.
	ExplorationsToConv int
	ConvergedAt        int // -1 if never converged / not a learner
	FinalTempC         float64

	Records []FrameRecord // nil unless Config.Record
}

// tracer is the optional introspection surface the proposed RTM exposes;
// the engine records it when present.
type tracer interface {
	PredictedCC() []float64
	SlackL() float64
	Epsilon() float64
}

// Run executes the trace to completion and returns the aggregated result.
// It validates the trace and panics on configuration errors (nil governor,
// trace wider than the cluster) — those are harness bugs, not run-time
// conditions.
func Run(cfg Config) *Result {
	if cfg.Governor == nil {
		panic("sim: Config.Governor is nil")
	}
	if err := cfg.Trace.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	cluster := cfg.Cluster
	if cluster == nil {
		cluster = platform.DefaultA15Cluster(cfg.Seed)
	}
	if cfg.Trace.Threads() > cluster.NumCores() {
		panic(fmt.Sprintf("sim: trace %q needs %d threads, cluster has %d cores",
			cfg.Trace.Name, cfg.Trace.Threads(), cluster.NumCores()))
	}

	ctx := governor.Context{
		Table:    cluster.Table(),
		NumCores: cluster.NumCores(),
		PeriodS:  cfg.Trace.RefTimeS,
		Seed:     cfg.Seed,
	}
	cfg.Governor.Reset(ctx)

	var decisionOverhead float64
	if om, ok := cfg.Governor.(governor.OverheadModeler); ok {
		decisionOverhead = om.DecisionOverheadS()
	}

	res := &Result{
		Workload:     cfg.Trace.Name,
		Governor:     cfg.Governor.Name(),
		Frames:       cfg.Trace.Len(),
		Explorations: -1,
		ConvergedAt:  -1,
	}
	if cfg.Record {
		res.Records = getRecords(cfg.Trace.Len())
	}

	prev := make([]platform.PMUSample, cluster.NumCores())
	for c := range prev {
		prev[c] = cluster.PMU(c).Read()
	}
	obs := governor.Observation{Epoch: -1}
	var sumPerf float64

	// Observation buffers are reused across frames: governors consume them
	// inside Decide and must not retain them (none do — the Observation
	// contract is a per-epoch snapshot).
	cycles := make([]uint64, cluster.NumCores())
	utils := make([]float64, cluster.NumCores())

	for i, frame := range cfg.Trace.Frames {
		// The governor may inspect its predictors before we feed the
		// frame; capture the forecast it is acting on. Only recorded runs
		// pay for the introspection.
		predicted := nan()
		if cfg.Record && i > 0 {
			if tr, ok := cfg.Governor.(tracer); ok {
				predicted = maxFloat64s(tr.PredictedCC())
			}
		}

		idx := cfg.Governor.Decide(obs)
		transitionCost := cluster.SetOPP(idx)
		rep := cluster.Execute(frame.Cycles, decisionOverhead+transitionCost, cfg.Trace.RefTimeS)

		// Build the observation for the next decision from what the OS
		// could measure: PMU deltas, the sensor, the clock.
		for c := range cycles {
			s := cluster.PMU(c).Read()
			d := s.Delta(prev[c])
			prev[c] = s
			cycles[c] = d.Cycles
			utils[c] = d.Utilization()
		}
		obs = governor.Observation{
			Epoch:     i,
			Cycles:    cycles,
			Util:      utils,
			ExecTimeS: rep.ExecTimeS,
			PeriodS:   cfg.Trace.RefTimeS,
			WallTimeS: rep.WallTimeS,
			PowerW:    rep.SensorPowerW,
			TempC:     rep.EndTempC,
			OPPIdx:    rep.OPPIdx,
		}

		missed := rep.SlackS < 0
		if missed {
			res.Misses++
		}
		res.EnergyJ += rep.EnergyJ
		res.SensorEnergyJ += rep.SensorPowerW * rep.WallTimeS
		res.SimTimeS += rep.WallTimeS
		sumPerf += rep.ExecTimeS / cfg.Trace.RefTimeS

		if cfg.Record {
			rec := FrameRecord{
				Epoch:        i,
				OPPIdx:       rep.OPPIdx,
				FreqMHz:      rep.OPP.FreqMHz,
				ExecTimeS:    rep.ExecTimeS,
				SlackRatio:   rep.SlackS / cfg.Trace.RefTimeS,
				EnergyJ:      rep.EnergyJ,
				AvgPowerW:    rep.AvgPowerW,
				SensorPowerW: rep.SensorPowerW,
				TempC:        rep.EndTempC,
				Missed:       missed,
				ActualCC:     float64(frame.MaxCycles()),
				PredictedCC:  predicted,
				AvgSlackL:    nan(),
				Epsilon:      nan(),
			}
			if tr, ok := cfg.Governor.(tracer); ok {
				rec.AvgSlackL = tr.SlackL()
				rec.Epsilon = tr.Epsilon()
			}
			res.Records = append(res.Records, rec)
		}
	}

	res.NormPerf = sumPerf / float64(cfg.Trace.Len())
	res.MissRate = float64(res.Misses) / float64(cfg.Trace.Len())
	if res.SimTimeS > 0 {
		res.MeanPowerW = res.EnergyJ / res.SimTimeS
	}
	res.Transitions = cluster.Transitions()
	res.FinalTempC = cluster.TempC()
	if ls, ok := cfg.Governor.(governor.LearningStats); ok {
		res.Explorations = ls.Explorations()
		res.ConvergedAt = ls.ConvergedAtEpoch()
		res.ExplorationsToConv = res.Explorations
		if curve, ok := cfg.Governor.(governor.ExplorationCurve); ok && res.ConvergedAt >= 0 {
			res.ExplorationsToConv = curve.ExplorationsAt(res.ConvergedAt)
		}
	}
	return res
}

func nan() float64 { return math.NaN() }

func maxFloat64s(xs []float64) float64 {
	if len(xs) == 0 {
		return nan()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
