package sim

import (
	"math"
	"testing"

	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/workload"
)

// Failure-injection and hostile-input tests: the engine must stay sane
// when a governor or the environment misbehaves.

// wildGovernor returns out-of-range and pathological indices.
type wildGovernor struct{ calls int }

func (w *wildGovernor) Name() string           { return "wild" }
func (w *wildGovernor) Reset(governor.Context) {}
func (w *wildGovernor) Decide(governor.Observation) int {
	w.calls++
	switch w.calls % 4 {
	case 0:
		return -1000
	case 1:
		return 1 << 20
	case 2:
		return -1
	default:
		return 5
	}
}

func TestEngineClampsWildGovernor(t *testing.T) {
	tr := workload.Constant("steady", 25, 100, 4, 20e6)
	res := Run(Config{Trace: tr, Governor: &wildGovernor{}, Seed: 1})
	if res.Frames != 100 {
		t.Fatalf("run did not complete: %d frames", res.Frames)
	}
	if res.EnergyJ <= 0 || math.IsNaN(res.EnergyJ) {
		t.Fatalf("energy accounting corrupted: %v", res.EnergyJ)
	}
	// Out-of-range choices clamp to the table edges, so the run behaves
	// like an alternation between extreme points — expensive but legal.
	if res.NormPerf <= 0 {
		t.Fatalf("NormPerf = %v", res.NormPerf)
	}
}

func TestEngineHandlesIdleFrames(t *testing.T) {
	// Frames with zero demand on some threads (an application skipping
	// work) must not divide by zero or produce negative slack accounting.
	frames := make([]workload.Frame, 50)
	for i := range frames {
		if i%3 == 0 {
			frames[i] = workload.Frame{Cycles: []uint64{1, 1, 1, 1}}
		} else {
			frames[i] = workload.Frame{Cycles: []uint64{10e6, 0, 0, 0}}
		}
	}
	tr := workload.Trace{Name: "bursty", RefTimeS: 0.040, Frames: frames}
	// ondemand lags the idle/busy alternation (a real property of reactive
	// governors — after an idle frame it drops to fmin and the next busy
	// frame overruns), so the engine-sanity assertions use it only for
	// completion; the no-miss check uses the performance governor, for
	// which every frame trivially fits.
	res := Run(Config{Trace: tr, Governor: governor.NewOndemand(), Seed: 1})
	if res.Frames != 50 || res.EnergyJ <= 0 {
		t.Fatalf("bursty run corrupted: %+v", res)
	}
	res = Run(Config{Trace: tr, Governor: governor.NewPerformance(), Seed: 1})
	if res.Misses != 0 {
		t.Fatalf("trivial demand missed %d deadlines at fmax", res.Misses)
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no idle energy accounted")
	}
}

func TestEngineWithNoisySensor(t *testing.T) {
	// A sensor with huge noise must not corrupt the run: the model energy
	// stays exact; only the sensor-reported figure wobbles.
	cluster := platform.NewCluster(platform.ClusterConfig{
		Name:     "A15",
		Table:    platform.A15Table(),
		NumCores: 4,
		Sensor: func() *platform.PowerSensor {
			s := platform.NewPowerSensor(1e-3, 7)
			s.NoiseSigmaW = 2.0 // 2 W of noise on a ~2 W signal
			return s
		}(),
		Seed: 7,
	})
	tr := workload.Constant("steady", 25, 200, 4, 30e6)
	res := Run(Config{Trace: tr, Governor: governor.NewPerformance(), Cluster: cluster, Seed: 7})
	if res.EnergyJ <= 0 {
		t.Fatal("model energy corrupted")
	}
	// Sensor energy remains positive (negative samples clamp at zero) and
	// within a factor of a few of the model.
	if res.SensorEnergyJ <= 0 {
		t.Fatalf("sensor energy %v", res.SensorEnergyJ)
	}
	ratio := res.SensorEnergyJ / res.EnergyJ
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("sensor/model energy ratio %v implausible even for a broken sensor", ratio)
	}
}

func TestEngineSingleCoreCluster(t *testing.T) {
	// A one-core cluster with a single-thread workload exercises the
	// degenerate sizing paths.
	pm := platform.DefaultA15PowerModel()
	pm.NumCores = 1
	cluster := platform.NewCluster(platform.ClusterConfig{
		Name: "solo", Table: platform.A15Table(), NumCores: 1, Power: pm, Seed: 3,
	})
	tr := workload.Constant("solo", 25, 50, 1, 20e6)
	res := Run(Config{Trace: tr, Governor: governor.NewOndemand(), Cluster: cluster, Seed: 3})
	if res.Frames != 50 {
		t.Fatal("single-core run did not complete")
	}
}

func TestEngineExtremeDeadlines(t *testing.T) {
	// Unmeetable deadline: every frame misses, but accounting stays sane.
	impossible := workload.Constant("impossible", 1000, 30, 4, 50e6) // 1 ms budget
	res := Run(Config{Trace: impossible, Governor: governor.NewPerformance(), Seed: 1})
	if res.MissRate != 1 {
		t.Fatalf("impossible deadline miss rate %v", res.MissRate)
	}
	if res.NormPerf < 1 {
		t.Fatalf("impossible deadline NormPerf %v", res.NormPerf)
	}
	// Extremely loose deadline: nothing misses, idle dominates.
	loose := workload.Constant("loose", 1, 30, 4, 10e6) // 1 s budget
	res = Run(Config{Trace: loose, Governor: governor.NewPowersave(), Seed: 1})
	if res.Misses != 0 {
		t.Fatalf("loose deadline missed %d", res.Misses)
	}
}
