package workload

// PARSEC benchmark workload models. Demands are sized so that at the
// default 25 iterations/second requirement on four A15 threads the
// required frequency lands mid-table; the distinguishing features per
// benchmark follow Bienia et al.'s PARSEC characterisation.

// ParsecBlackscholes: embarrassingly data-parallel option pricing over a
// fixed portfolio — near-constant per-iteration work, tiny imbalance.
func ParsecBlackscholes() Profile {
	return Profile{
		Name:                "parsec.blackscholes",
		BaseCyclesPerThread: 30e6,
		NoiseSigma:          0.02,
		ImbalanceCV:         0.02,
		LevelMin:            0.8,
		LevelMax:            1.2,
	}
}

// ParsecBodytrack: particle-filter body tracking — per-frame work follows
// how well particles match the video, giving visible noise plus occasional
// re-sampling bursts.
func ParsecBodytrack() Profile {
	return Profile{
		Name:                "parsec.bodytrack",
		BaseCyclesPerThread: 28e6,
		WalkSigma:           0.02,
		BurstProb:           0.04,
		BurstMag:            1.7,
		NoiseSigma:          0.10,
		ImbalanceCV:         0.08,
		LevelMin:            0.6,
		LevelMax:            1.8,
	}
}

// ParsecFerret: content-similarity search structured as a pipeline — the
// stage imbalance dominates (high per-thread CV), with query-dependent
// drift.
func ParsecFerret() Profile {
	return Profile{
		Name:                "parsec.ferret",
		BaseCyclesPerThread: 26e6,
		WalkSigma:           0.03,
		NoiseSigma:          0.08,
		ImbalanceCV:         0.25,
		LevelMin:            0.5,
		LevelMax:            1.9,
	}
}

// ParsecFluidanimate: SPH fluid simulation — smooth slow drift as particles
// redistribute, mild alternation from the rebuild-grid/compute-forces
// phase pair.
func ParsecFluidanimate() Profile {
	return Profile{
		Name:                "parsec.fluidanimate",
		BaseCyclesPerThread: 32e6,
		PeriodFrames:        2,
		PeriodAmp:           0.08,
		WalkSigma:           0.01,
		NoiseSigma:          0.03,
		ImbalanceCV:         0.05,
		LevelMin:            0.8,
		LevelMax:            1.4,
	}
}

// ParsecFreqmine: FP-growth frequent itemset mining — irregular, bursty
// work as conditional trees are built and mined.
func ParsecFreqmine() Profile {
	return Profile{
		Name:                "parsec.freqmine",
		BaseCyclesPerThread: 24e6,
		WalkSigma:           0.04,
		BurstProb:           0.08,
		BurstMag:            2.2,
		NoiseSigma:          0.15,
		ImbalanceCV:         0.12,
		LevelMin:            0.4,
		LevelMax:            2.4,
	}
}

// ParsecSwaptions: Monte-Carlo swaption pricing — fixed simulation counts
// per iteration, the most regular of the suite.
func ParsecSwaptions() Profile {
	return Profile{
		Name:                "parsec.swaptions",
		BaseCyclesPerThread: 34e6,
		NoiseSigma:          0.015,
		ImbalanceCV:         0.02,
		LevelMin:            0.9,
		LevelMax:            1.1,
	}
}

// ParsecVips: image-processing pipeline — moderate noise, stage imbalance,
// and tile-dependent drift.
func ParsecVips() Profile {
	return Profile{
		Name:                "parsec.vips",
		BaseCyclesPerThread: 27e6,
		WalkSigma:           0.02,
		NoiseSigma:          0.07,
		ImbalanceCV:         0.10,
		LevelMin:            0.6,
		LevelMax:            1.6,
	}
}

// ParsecX264: H.264 *encoding* — GOP structure shows up as a strong
// periodic component (I-frame spikes every keyframe interval) on top of
// motion-dependent noise.
func ParsecX264() Profile {
	return Profile{
		Name:                "parsec.x264",
		BaseCyclesPerThread: 25e6,
		PeriodFrames:        24,
		PeriodAmp:           0.35,
		WalkSigma:           0.02,
		NoiseSigma:          0.12,
		ImbalanceCV:         0.08,
		LevelMin:            0.5,
		LevelMax:            2.0,
	}
}

// ParsecStreamcluster: online clustering — long quasi-stable stretches
// punctuated by re-clustering bursts when a new block of points opens.
func ParsecStreamcluster() Profile {
	return Profile{
		Name:                "parsec.streamcluster",
		BaseCyclesPerThread: 29e6,
		WalkSigma:           0.005,
		BurstProb:           0.03,
		BurstMag:            2.0,
		NoiseSigma:          0.04,
		ImbalanceCV:         0.05,
		LevelMin:            0.7,
		LevelMax:            1.5,
	}
}

// ParsecProfiles returns the full PARSEC model set.
func ParsecProfiles() []Profile {
	return []Profile{
		ParsecBlackscholes(), ParsecBodytrack(), ParsecFerret(),
		ParsecFluidanimate(), ParsecFreqmine(), ParsecSwaptions(),
		ParsecVips(), ParsecX264(), ParsecStreamcluster(),
	}
}
