package workload

import (
	"fmt"
	"math/rand"
)

// VideoConfig models a frame-based video decoder (MPEG4 or H.264) as the
// paper runs one: each output frame is one decision epoch, decoded
// slice-parallel across the cluster's cores with a per-frame deadline of
// 1/FPS.
//
// The cycle demand of a frame is the product of four factors, matching how
// decoder workloads actually vary:
//
//	demand = BaseCycles × typeWeight(GOP position) × sceneActivity × noise
//
// Group-of-pictures structure gives the strong short-period component
// (I-frames are several times heavier than B-frames); scene activity is a
// slowly drifting multiplier that jumps at scene changes (cuts, in the
// football sequence: camera switches); noise is per-frame lognormal motion
// variation.
type VideoConfig struct {
	Name      string
	Codec     string  // "mpeg4" or "h264" (documentation only)
	FPS       float64 // performance requirement, frames per second
	NumFrames int
	Threads   int

	// GOP structure: a repeating pattern of frame types starting with an
	// I-frame, e.g. GOPLength=12, BFrames=2 produces IBBPBBPBBPBB.
	GOPLength int
	BFrames   int // consecutive B-frames between reference frames

	// BaseCycles is the total cluster demand (all threads summed) of a
	// nominal P-frame at scene activity 1.0.
	BaseCycles float64
	// Type weights relative to a P-frame.
	IWeight float64
	BWeight float64

	// Scene dynamics.
	SceneChangeProb float64 // per-frame probability of a cut
	SceneChangeAt   []int   // additional scripted cuts (for Fig. 3 runs)
	SceneSigma      float64 // log-sigma of the activity level drawn at a cut
	SceneWalkSigma  float64 // per-frame drift of activity between cuts
	SceneMin        float64 // clamp for the activity multiplier
	SceneMax        float64

	NoiseSigma  float64 // per-frame lognormal motion noise
	ImbalanceCV float64 // thread imbalance (slice size variation)

	Seed int64
}

// Validate reports configuration errors.
func (c VideoConfig) Validate() error {
	switch {
	case c.FPS <= 0:
		return fmt.Errorf("workload: video %q needs positive FPS", c.Name)
	case c.NumFrames < 1:
		return fmt.Errorf("workload: video %q needs at least one frame", c.Name)
	case c.Threads < 1:
		return fmt.Errorf("workload: video %q needs at least one thread", c.Name)
	case c.GOPLength < 1:
		return fmt.Errorf("workload: video %q needs GOPLength >= 1", c.Name)
	case c.BFrames < 0 || c.BFrames >= c.GOPLength:
		return fmt.Errorf("workload: video %q has invalid BFrames", c.Name)
	case c.BaseCycles <= 0:
		return fmt.Errorf("workload: video %q needs positive BaseCycles", c.Name)
	case c.IWeight < 1 || c.BWeight <= 0 || c.BWeight > 1:
		return fmt.Errorf("workload: video %q type weights must satisfy B<=1<=I", c.Name)
	case c.SceneMin <= 0 || c.SceneMax < c.SceneMin:
		return fmt.Errorf("workload: video %q scene clamp invalid", c.Name)
	}
	return nil
}

// frameType returns "I", "P" or "B" for GOP position pos.
func (c VideoConfig) frameType(pos int) byte {
	if pos == 0 {
		return 'I'
	}
	if c.BFrames == 0 {
		return 'P'
	}
	// After the I frame, groups of BFrames B's followed by one P.
	if (pos-1)%(c.BFrames+1) < c.BFrames {
		return 'B'
	}
	return 'P'
}

// Generate produces the trace. The same config and seed always produce the
// identical trace.
func (c VideoConfig) Generate() Trace {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	cuts := make(map[int]bool, len(c.SceneChangeAt))
	for _, f := range c.SceneChangeAt {
		cuts[f] = true
	}

	activity := 1.0
	frames := make([]Frame, c.NumFrames)
	for i := range frames {
		if cuts[i] || rng.Float64() < c.SceneChangeProb {
			// A cut re-draws the activity level: a new scene can be much
			// busier or much calmer than the previous one.
			activity = logNormal(rng, c.SceneSigma)
			if activity < c.SceneMin {
				activity = c.SceneMin
			}
			if activity > c.SceneMax {
				activity = c.SceneMax
			}
		} else {
			activity = boundedWalk(rng, activity, c.SceneWalkSigma, 0.02, c.SceneMin, c.SceneMax)
		}
		w := 1.0
		switch c.frameType(i % c.GOPLength) {
		case 'I':
			w = c.IWeight
		case 'B':
			w = c.BWeight
		}
		total := c.BaseCycles * w * activity * logNormal(rng, c.NoiseSigma)
		frames[i] = Frame{Cycles: splitAcrossThreads(rng, total, c.Threads, c.ImbalanceCV)}
	}
	return Trace{Name: c.Name, RefTimeS: 1 / c.FPS, Frames: frames}
}

// FootballH264 reproduces the Table I workload: an H.264 decode of a
// football sequence of approximately 3000 frames. Sport footage cuts often
// (every few seconds) and carries high motion, hence the comparatively
// large scene sigma and noise. At 4 threads the critical-path demand spans
// roughly 450–1800 MHz of required frequency at 25 fps, exercising most of
// the A15 ladder.
func FootballH264(seed int64) Trace {
	return VideoConfig{
		Name:            "h264-football",
		Codec:           "h264",
		FPS:             25,
		NumFrames:       3000,
		Threads:         4,
		GOPLength:       12,
		BFrames:         2,
		BaseCycles:      140e6,
		IWeight:         1.08,
		BWeight:         0.95,
		SceneChangeProb: 1.0 / 80, // a cut every ~3 s of football coverage
		SceneSigma:      0.30,
		SceneWalkSigma:  0.010,
		SceneMin:        0.60,
		SceneMax:        1.40,
		NoiseSigma:      0.035,
		ImbalanceCV:     0.05,
		Seed:            seed,
	}.Generate()
}

// MPEG4SVGA24 reproduces the Fig. 3 workload: MPEG4 decoding at 24 fps
// SVGA. Scripted cuts early in the sequence (frames 8 and 18) recreate the
// paper's exploration-phase mispredictions over the first ~25 frames, and
// the cut at frame 92 recreates the exploitation-phase misprediction
// episode "after 90 frames"; the remainder of the sequence is calm, which
// is what drops the average misprediction to the paper's ≈3 % band.
func MPEG4SVGA24(seed int64, numFrames int) Trace {
	return VideoConfig{
		Name:            "mpeg4-svga24",
		Codec:           "mpeg4",
		FPS:             24,
		NumFrames:       numFrames,
		Threads:         4,
		GOPLength:       12,
		BFrames:         2,
		BaseCycles:      140e6,
		IWeight:         1.05,
		BWeight:         0.96,
		SceneChangeProb: 0, // cuts are scripted for reproducibility
		SceneChangeAt:   []int{8, 18, 92},
		SceneSigma:      0.35,
		SceneWalkSigma:  0.008,
		SceneMin:        0.60,
		SceneMax:        1.45,
		NoiseSigma:      0.015,
		ImbalanceCV:     0.04,
		Seed:            seed,
	}.Generate()
}

// MPEG4At30 is the Table II MPEG4 workload (30 fps): moderate-to-high
// workload variation, which keeps the learner exploring longer.
func MPEG4At30(seed int64, numFrames int) Trace {
	return VideoConfig{
		Name:            "mpeg4-30fps",
		Codec:           "mpeg4",
		FPS:             30,
		NumFrames:       numFrames,
		Threads:         4,
		GOPLength:       12,
		BFrames:         2,
		BaseCycles:      110e6,
		IWeight:         1.15,
		BWeight:         0.90,
		SceneChangeProb: 1.0 / 120,
		SceneSigma:      0.30,
		SceneWalkSigma:  0.012,
		SceneMin:        0.55,
		SceneMax:        1.50,
		NoiseSigma:      0.05,
		ImbalanceCV:     0.06,
		Seed:            seed,
	}.Generate()
}

// H264At15 is the Table II H.264 workload (15 fps): the longer deadline
// admits lower frequencies but H.264's wider per-frame spread (more B/I
// contrast, higher noise) keeps state visitation broad — the paper reports
// it needs the most explorations of the three applications.
func H264At15(seed int64, numFrames int) Trace {
	return VideoConfig{
		Name:            "h264-15fps",
		Codec:           "h264",
		FPS:             15,
		NumFrames:       numFrames,
		Threads:         4,
		GOPLength:       12,
		BFrames:         2,
		BaseCycles:      240e6,
		IWeight:         1.25,
		BWeight:         0.85,
		SceneChangeProb: 1.0 / 100,
		SceneSigma:      0.35,
		SceneWalkSigma:  0.015,
		SceneMin:        0.50,
		SceneMax:        1.40,
		NoiseSigma:      0.08,
		ImbalanceCV:     0.08,
		Seed:            seed,
	}.Generate()
}
