// Package atomicfile is the one copy of the write-to-temp + rename
// discipline the durable stores share (sessionstore.Dir's checkpoint
// files, registry.Dir's blobs): a reader never observes a torn write,
// and a crashed writer's leavings are swept only once old enough that
// no live sibling on shared storage can still own them.
package atomicfile

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SweepAge is how old a temp file must be before a sweep treats it as a
// crashed writer's leavings. A live writer's temp file exists for
// milliseconds between CreateTemp and Rename; on storage shared by a
// replica fleet, a starting member must not sweep a sibling's in-flight
// write out from under it.
const SweepAge = time.Hour

// WriteFile atomically replaces path with data: the bytes land in a
// temp file (tmpPrefix-named, in path's own directory — rename is only
// atomic within one filesystem directory) and the rename publishes them.
func WriteFile(path string, data []byte, tmpPrefix string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+"*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SweepTemps removes tmpPrefix-named files under root older than
// SweepAge — torn state by definition. Fresh temp files are left alone;
// walk errors are ignored (the sweep is best-effort hygiene).
func SweepTemps(root, tmpPrefix string) {
	cutoff := time.Now().Add(-SweepAge)
	_ = filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() || !strings.HasPrefix(e.Name(), tmpPrefix) {
			return nil
		}
		if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
			_ = os.Remove(path)
		}
		return nil
	})
}
