package sim

import (
	"math"
	"runtime"
	"sync"
)

// IndexedResult pairs one finished run with its intake position, so a
// streaming consumer can re-associate results with jobs without the engine
// retaining either. Results arrive in completion order, not intake order;
// Index is the job's position in the input stream.
type IndexedResult struct {
	Index  int
	Name   string
	Result *Result
}

// Stream executes jobs from the channel on a fixed pool of workers and
// emits each result as soon as its run finishes. Memory is bounded by the
// worker count: at most `workers` runs are in flight, the output channel is
// unbuffered, and nothing is retained after a result is handed to the
// consumer — a 10k-job sweep holds O(workers) simulation state, never
// O(jobs). workers <= 0 selects GOMAXPROCS.
//
// The output channel is closed after the last job completes. Each run is
// internally deterministic (see Job); concurrency reorders completion, not
// outcomes, so the Result delivered for a given job is byte-identical to a
// serial Run of the same Config.
//
// The consumer must drain the channel to completion: abandoning it mid-
// stream leaves the workers (and the jobs producer) blocked forever. To
// stop a sweep early, stop feeding the jobs channel — close it (or, for a
// generator, select on a done signal) and keep reading until the output
// closes; in-flight runs finish and the pool shuts down cleanly.
func Stream(jobs <-chan Job, workers int) <-chan IndexedResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type indexedJob struct {
		idx int
		job Job
	}
	// The intake stage stamps each job with its stream position before the
	// fan-out, so workers cannot race on the index assignment.
	intake := make(chan indexedJob)
	go func() {
		defer close(intake)
		i := 0
		for job := range jobs {
			intake <- indexedJob{i, job}
			i++
		}
	}()

	out := make(chan IndexedResult)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ij := range intake {
				out <- IndexedResult{Index: ij.idx, Name: ij.job.Name, Result: Run(ij.job.Build())}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// JobSource adapts a job slice to the channel form Stream consumes. For
// sweeps too large to materialise, feed Stream from a generator goroutine
// instead.
func JobSource(jobs []Job) <-chan Job {
	ch := make(chan Job)
	go func() {
		defer close(ch)
		for _, j := range jobs {
			ch <- j
		}
	}()
	return ch
}

// Aggregator folds results into running statistics without retaining them:
// energy via Welford's online mean/variance, the rest as running means.
// It is the streaming replacement for collecting []*Result and calling
// Summarize — constant memory however many runs flow through it.
//
// An Aggregator is not safe for concurrent use; give each consumer
// goroutine its own and combine them with Merge.
type Aggregator struct {
	n          int
	energyMean float64
	energyM2   float64
	perfSum    float64
	missSum    float64
	expSum     float64
	expN       int
	convSum    float64
	convN      int
}

// Add folds in one result.
func (a *Aggregator) Add(r *Result) {
	a.n++
	delta := r.EnergyJ - a.energyMean
	a.energyMean += delta / float64(a.n)
	a.energyM2 += delta * (r.EnergyJ - a.energyMean)
	a.perfSum += r.NormPerf
	a.missSum += r.MissRate
	if r.Explorations >= 0 {
		a.expSum += float64(r.Explorations)
		a.expN++
	}
	if r.ConvergedAt >= 0 {
		a.convSum += float64(r.ConvergedAt)
		a.convN++
	}
}

// Count returns the number of results folded in so far.
func (a *Aggregator) Count() int { return a.n }

// Merge folds another aggregator's state into this one (parallel-consumer
// reduction, Chan et al.'s pairwise variance combination).
func (a *Aggregator) Merge(b *Aggregator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := float64(a.n + b.n)
	delta := b.energyMean - a.energyMean
	a.energyM2 += b.energyM2 + delta*delta*float64(a.n)*float64(b.n)/n
	a.energyMean += delta * float64(b.n) / n
	a.n += b.n
	a.perfSum += b.perfSum
	a.missSum += b.missSum
	a.expSum += b.expSum
	a.expN += b.expN
	a.convSum += b.convSum
	a.convN += b.convN
}

// Summary materialises the aggregate view.
func (a *Aggregator) Summary() Summary {
	s := Summary{Runs: a.n}
	if a.n == 0 {
		return s
	}
	n := float64(a.n)
	s.MeanEnergyJ = a.energyMean
	s.StdEnergyJ = math.Sqrt(a.energyM2 / n)
	s.MeanNormPerf = a.perfSum / n
	s.MeanMissRate = a.missSum / n
	s.MeanExplore = nan()
	if a.expN > 0 {
		s.MeanExplore = a.expSum / float64(a.expN)
	}
	s.MeanConvergeAt = nan()
	if a.convN > 0 {
		s.MeanConvergeAt = a.convSum / float64(a.convN)
	}
	return s
}
