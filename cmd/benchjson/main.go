// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record — the format the CI perf-trajectory step
// writes to BENCH_<n>.json so benchmark results accumulate as comparable
// artifacts instead of scrollback.
//
//	go test -run '^$' -bench 'SimEpoch|ServeDecideThroughput' -benchmem ./... | benchjson -o BENCH_2.json
//
// Each benchmark line's measurement pairs ("1234 ns/op", "102 allocs/op",
// "132242 decisions/s", ...) become a metrics map keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        []string    `json:"packages,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	rep := report{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseBenchLine parses "BenchmarkName-8  1234  5678 ns/op  9 B/op ..."
// into its iteration count and value/unit measurement pairs.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
