package governor

// LearningStats is implemented by the learning governors (the proposed RTM,
// the UPD-RL baseline, the ML-DTM baseline) so the experiment harness can
// read the two quantities the paper tabulates:
//
//   - Table II counts *explorations*: decision epochs in which the policy
//     chose an exploratory (non-greedy) action during initial learning;
//   - Table III reports the *learning overhead* in decision epochs: how
//     long until the learnt policy stops changing.
type LearningStats interface {
	// Explorations returns the number of exploratory decisions taken.
	Explorations() int
	// ConvergedAtEpoch returns the epoch index at which initial learning
	// completed (the greedy policy became stable), or -1 while still
	// learning.
	ConvergedAtEpoch() int
}

// ExplorationStats is implemented by learners that can report where they
// stand on the explore→exploit arc while they serve — the online-ops
// counters a fleet operator watches next to decision latency. All three
// quantities are instantaneous reads of serving state, cheap enough for
// a metrics endpoint to poll.
type ExplorationStats interface {
	// Epsilon returns the current exploration probability — the
	// ε schedule's position on its decay curve.
	Epsilon() float64
	// VisitTotal returns the total state–action visits recorded across
	// the learner's value tables (the denominator of its visit-decayed
	// learning rates).
	VisitTotal() int
	// ConvergedFraction returns the fraction of states whose greedy
	// action has been stable for the learner's convergence window —
	// 1.0 means the whole policy has settled.
	ConvergedFraction() float64
}

// ExplorationCurve is implemented by learners that record their cumulative
// exploration count per epoch, so the harness can report explorations
// *before convergence* — the Table II quantity: exploratory decisions spent
// getting to a stable policy, not the asymptotic tail after it.
type ExplorationCurve interface {
	// ExplorationsAt returns the cumulative exploration count after the
	// given epoch completed; past the last epoch it returns the total.
	ExplorationsAt(epoch int) int
}

// ConvergenceTracker reports when the greedy policy stabilised: the start
// of the current window of StableEpochs consecutive epochs in which the
// policy changed at most MaxFlips table entries in total. On stochastic
// workloads a strict no-change criterion never triggers — occasional
// single-state flips in rarely visited rows persist indefinitely — so a
// small tolerance is part of the definition, not a relaxation of it.
//
// The epoch is NOT latched: if the policy later changes beyond tolerance,
// the tracker reopens and subsequently reports the newer stabilisation.
// This matters for learners whose pre-learning greedy policy is trivially
// constant (an untouched Q-table always returns action 0): the early quiet
// stretch must not masquerade as convergence once real learning starts
// flipping entries.
type ConvergenceTracker struct {
	// StableEpochs is the window length.
	StableEpochs int
	// MaxFlips is the number of greedy-action changes tolerated inside
	// the window.
	MaxFlips int

	// prev holds action indices (a DVFS ladder has ≤ a few dozen points)
	// and lastFlip/flipRing hold epoch numbers and per-epoch flip counts;
	// the narrow element types keep the tracker's three per-session arrays
	// at ~a third of their []int size, which matters when a serving fleet
	// holds one tracker per live session.
	prev      []int16
	lastFlip  []int32 // epoch each state's greedy action last changed
	flipRing  []int32
	ringIdx   int
	windowSum int
	seen      int
	converged int
	epoch     int
}

// NewConvergenceTracker returns a tracker requiring the given stable run
// length (values < 1 are raised to 1) with a one-flip tolerance.
func NewConvergenceTracker(stableEpochs int) *ConvergenceTracker {
	if stableEpochs < 1 {
		stableEpochs = 1
	}
	return &ConvergenceTracker{
		StableEpochs: stableEpochs,
		MaxFlips:     1,
		flipRing:     make([]int32, stableEpochs),
		converged:    -1,
	}
}

// Observe records the greedy policy (one chosen action per state) for the
// current epoch. A policy of different length counts as fully changed.
func (c *ConvergenceTracker) Observe(policy []int) {
	flips := 0
	if c.prev == nil || len(policy) != len(c.prev) {
		flips = len(policy)
		if flips == 0 {
			flips = 1
		}
		c.lastFlip = make([]int32, len(policy))
		for i := range c.lastFlip {
			c.lastFlip[i] = int32(c.epoch)
		}
	} else {
		for i := range policy {
			if int16(policy[i]) != c.prev[i] {
				flips++
				c.lastFlip[i] = int32(c.epoch)
			}
		}
	}
	if cap(c.prev) < len(policy) {
		c.prev = make([]int16, len(policy))
	} else {
		c.prev = c.prev[:len(policy)]
	}
	for i, a := range policy {
		c.prev[i] = int16(a)
	}

	c.windowSum += flips - int(c.flipRing[c.ringIdx])
	c.flipRing[c.ringIdx] = int32(flips)
	c.ringIdx = (c.ringIdx + 1) % c.StableEpochs
	if c.seen < c.StableEpochs {
		c.seen++
	}

	if c.seen == c.StableEpochs {
		if c.windowSum <= c.MaxFlips {
			if c.converged < 0 {
				c.converged = c.epoch - c.StableEpochs + 1
				if c.converged < 0 {
					c.converged = 0
				}
			}
		} else {
			c.converged = -1
		}
	}
	c.epoch++
}

// ConvergedAt returns the start of the current stable window, or -1 while
// the policy is still moving.
func (c *ConvergenceTracker) ConvergedAt() int { return c.converged }

// WindowFlips returns the number of greedy-action changes inside the
// current window.
func (c *ConvergenceTracker) WindowFlips() int { return c.windowSum }

// Quiet reports whether the current window is within the flip tolerance —
// the "learning has stopped moving" signal the ε schedule consumes.
func (c *ConvergenceTracker) Quiet() bool {
	return c.seen == c.StableEpochs && c.windowSum <= c.MaxFlips
}

// StableFraction returns the fraction of states whose greedy action has
// not changed for at least StableEpochs epochs — the per-state view of
// convergence, where ConvergedAt is the all-states one. It is 0 until a
// full window has been observed: no state has had the chance to prove
// itself stable before then.
func (c *ConvergenceTracker) StableFraction() float64 {
	if c.seen < c.StableEpochs || len(c.lastFlip) == 0 {
		return 0
	}
	stable := 0
	for _, lf := range c.lastFlip {
		if c.epoch-int(lf) >= c.StableEpochs {
			stable++
		}
	}
	return float64(stable) / float64(len(c.lastFlip))
}

// Reset clears the tracker.
func (c *ConvergenceTracker) Reset() {
	c.prev = nil
	c.lastFlip = nil
	for i := range c.flipRing {
		c.flipRing[i] = 0
	}
	c.ringIdx = 0
	c.windowSum = 0
	c.seen = 0
	c.converged = -1
	c.epoch = 0
}
