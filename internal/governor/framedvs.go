package governor

import (
	"qgov/internal/predictor"
)

// FrameDVS is the classic proactive non-learning baseline: frame-based
// dynamic voltage scaling in the style of Choi, Cheng & Pedram (JOLPE'05,
// the paper's ref [3]). Each epoch it predicts the next frame's cycle
// demand and directly picks the slowest operating point that fits the
// deadline with a configurable safety margin:
//
//	f_next = ceil( predCC / (Tref · (1 − Margin)) )
//
// No table, no reward, no exploration — just prediction plus proportional
// control. It is the natural "why do we need RL at all?" comparison: on a
// stationary workload it is essentially optimal immediately, with zero
// learning overhead; what it cannot do is adapt its margin to the
// workload's volatility or to mispredictions, which is exactly the gap the
// paper's learning approach targets.
type FrameDVS struct {
	// Margin is the fraction of the period reserved against misprediction
	// and overheads (0.1 = aim to finish 10 % early).
	Margin float64
	// Gamma is the EWMA smoothing factor of the predictor.
	Gamma float64
	// OverheadS is the per-decision compute cost: one filter update and a
	// table lookup — far below the learning governors'.
	OverheadS float64

	ctx   Context
	preds []*predictor.EWMA
}

// NewFrameDVS constructs the governor with a 10 % margin and the paper's
// EWMA smoothing factor.
func NewFrameDVS() *FrameDVS {
	return &FrameDVS{Margin: 0.10, Gamma: 0.6, OverheadS: 15e-6}
}

// Name implements Governor.
func (g *FrameDVS) Name() string { return "framedvs" }

// DecisionOverheadS implements OverheadModeler.
func (g *FrameDVS) DecisionOverheadS() float64 { return g.OverheadS }

// Reset implements Governor.
func (g *FrameDVS) Reset(ctx Context) {
	g.ctx = ctx
	g.preds = make([]*predictor.EWMA, ctx.NumCores)
	for i := range g.preds {
		g.preds[i] = predictor.NewEWMA(g.Gamma)
	}
}

// Decide implements Governor.
func (g *FrameDVS) Decide(obs Observation) int {
	if obs.Epoch < 0 {
		return 0
	}
	var predCC float64
	for c, p := range g.preds {
		if c < len(obs.Cycles) {
			p.Observe(float64(obs.Cycles[c]))
		}
		if v := p.Predict(); v > predCC {
			predCC = v
		}
	}
	budget := obs.PeriodS * (1 - g.Margin)
	if budget <= 0 {
		return g.ctx.Table.MaxIdx()
	}
	return g.ctx.Table.CeilIdx(predCC / budget)
}

func init() {
	Register("framedvs", func() Governor { return NewFrameDVS() })
}
