package serve_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qgov/internal/promlint"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
)

// lintExposition runs the repo's own Prometheus linter over a live
// scrape and fails on any format violation.
func lintExposition(t *testing.T, body string) *promlint.Report {
	t.Helper()
	rep, err := promlint.Lint(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("promlint: %s", p)
	}
	return rep
}

// The scale guarantee behind the cardinality fix: a default scrape of a
// server holding 10k sessions must stay within a fixed byte and series
// budget — the same O(1) exposition an idle server produces — because
// per-session series only exist behind ?top=K. The budgets have head
// room over the current exposition (~6 KB, ~100 series) but are far
// below what even 100 per-session histograms would cost, so a
// regression that reintroduces unbounded series trips this long before
// it troubles a real scraper.
func TestScrapeByteBudget10kSessions(t *testing.T) {
	const (
		sessions     = 10_000
		byteBudget   = 32 * 1024
		seriesBudget = 300
	)
	h := newTestServer(t, serve.Options{})
	ts := newTCPServer(t, h)
	cl, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < sessions; i++ {
		body := fmt.Sprintf(`{"id":"scale-%d","governor":"ondemand"}`, i)
		if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
			t.Fatalf("create %d: status %d err %v (%s)", i, st, err, resp)
		}
	}
	// A little traffic so the aggregate histogram is populated.
	for i := 0; i < 64; i++ {
		if d, err := cl.Decide(fmt.Sprintf("scale-%d", i), steadyObs()); err != nil || d.Err != "" {
			t.Fatalf("decide %d: %v / %q", i, err, d.Err)
		}
	}

	body := promBody(t, h.ts.Client(), h.ts.URL, false)
	rep := lintExposition(t, body)
	if len(body) > byteBudget {
		t.Errorf("default scrape of %d sessions is %d bytes, budget %d", sessions, len(body), byteBudget)
	}
	if rep.Series > seriesBudget {
		t.Errorf("default scrape of %d sessions has %d series, budget %d", sessions, rep.Series, seriesBudget)
	}
	mustContain(t, body,
		fmt.Sprintf("rtmd_sessions %d", sessions),
		"rtmd_decision_latency_seconds_count 64",
	)

	// ?top=K bounds the opt-in slice too: asking for 5 renders exactly 5
	// sessions' series, and the clamp keeps even top=10000 bounded.
	top5 := promBody(t, h.ts.Client(), h.ts.URL, false, "top=5")
	if n := strings.Count(top5, "rtmd_session_decision_latency_seconds_count{"); n != 5 {
		t.Errorf("top=5 rendered %d per-session histograms, want 5", n)
	}
	lintExposition(t, top5)
	clamped := promBody(t, h.ts.Client(), h.ts.URL, false, fmt.Sprintf("top=%d", sessions))
	if n := strings.Count(clamped, "rtmd_session_decision_latency_seconds_count{"); n > 64 {
		t.Errorf("top=%d rendered %d per-session histograms, clamp is 64", sessions, n)
	}
	lintExposition(t, clamped)

	// The top-K selection is by decision count: the busiest session must
	// be in the top slice.
	for i := 0; i < 8; i++ {
		if d, err := cl.Decide("scale-3", steadyObs()); err != nil || d.Err != "" {
			t.Fatalf("decide: %v / %q", err, d.Err)
		}
	}
	top1 := promBody(t, h.ts.Client(), h.ts.URL, false, "top=1")
	mustContain(t, top1, `rtmd_session_decision_latency_seconds_count{session="scale-3"} 9`)
}

// Both tiers' expositions must satisfy the linter in their default and
// opt-in forms — the in-process version of the CI scrape-and-lint gate.
func TestExpositionHygieneBothTiers(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	for i := 0; i < 3; i++ {
		if st := h.post("/v1/sessions", map[string]any{"id": fmt.Sprintf("lint-%d", i), "governor": "rtm", "seed": i + 1}, nil); st != http.StatusCreated {
			t.Fatalf("create returned %d", st)
		}
	}
	var resp struct {
		Decisions []decision `json:"decisions"`
	}
	if st := h.post("/v1/decide", map[string]any{
		"requests": []decideItem{{Session: "lint-0", Obs: obsFromGov(steadyObs())}},
	}, &resp); st != http.StatusOK {
		t.Fatalf("decide returned %d", st)
	}
	lintExposition(t, promBody(t, h.ts.Client(), h.ts.URL, false))
	lintExposition(t, promBody(t, h.ts.Client(), h.ts.URL, false, "top=64"))

	_, addrs := newFleet(t, 2, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtHTTP := httptest.NewServer(rt.Handler())
	defer rtHTTP.Close()
	rcl, err := client.Dial(startRouterTCP(t, rt))
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("rlint-%d", i)
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, id, i+1)
		if st, r, err := rcl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
			t.Fatalf("create %s: status %d err %v (%s)", id, st, err, r)
		}
		if d, err := rcl.Decide(id, steadyObs()); err != nil || d.Err != "" {
			t.Fatalf("decide %s: %v / %q", id, err, d.Err)
		}
	}
	lintExposition(t, promBody(t, rtHTTP.Client(), rtHTTP.URL, false))
	lintExposition(t, promBody(t, rtHTTP.Client(), rtHTTP.URL, false, "top=64"))
}
