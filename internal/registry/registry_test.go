package registry_test

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"testing"

	"qgov/internal/registry"
	"qgov/internal/scenario"
	"qgov/internal/sessionstore"
	"qgov/internal/sim"
)

// stores builds one of each BlobStore implementation so every test runs
// against both.
func stores(t *testing.T) map[string]registry.BlobStore {
	t.Helper()
	dir, err := registry.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]registry.BlobStore{
		"mem": registry.NewMem(),
		"dir": dir,
	}
}

// Publish → lookup → byte-identical state, across both stores, for a
// spread of pseudo-random blobs: the registry's content addressing must
// hand back exactly the bytes published, dedupe identical publishes to
// one manifest id, and keep distinct fingerprints distinct.
func TestPublishLookupRoundTripProperty(t *testing.T) {
	for name, b := range stores(t) {
		t.Run(name, func(t *testing.T) {
			reg := registry.New(b)
			rng := rand.New(rand.NewSource(7))
			seen := map[string][]byte{}
			for i := 0; i < 50; i++ {
				state := make([]byte, 1+rng.Intn(4096))
				rng.Read(state)
				fp := registry.Fingerprint{
					Governor: fmt.Sprintf("g%d", rng.Intn(3)),
					Workload: fmt.Sprintf("w%d", rng.Intn(4)),
					Platform: fmt.Sprintf("p%d", rng.Intn(2)),
				}
				tr := registry.Training{Frames: int64(i), ConvergedFraction: rng.Float64()}
				m, err := reg.Publish(fp, tr, state)
				if err != nil {
					t.Fatal(err)
				}
				if m.Fingerprint != fp || m.Bytes != len(state) {
					t.Fatalf("manifest mangled: %+v", m)
				}
				// Idempotence: same fingerprint + same bytes → same id.
				m2, err := reg.Publish(fp, tr, state)
				if err != nil {
					t.Fatal(err)
				}
				if m2.ID != m.ID {
					t.Fatalf("re-publish changed id: %s vs %s", m2.ID, m.ID)
				}
				seen[m.ID] = append([]byte(nil), state...)
			}
			for id, want := range seen {
				got, err := reg.State(id)
				if err != nil {
					t.Fatalf("State(%s): %v", id, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("State(%s) returned %d bytes, want %d — content mangled", id, len(got), len(want))
				}
				m, err := reg.Manifest(id)
				if err != nil {
					t.Fatal(err)
				}
				if m.ID != id {
					t.Fatalf("Manifest(%s) carries id %s", id, m.ID)
				}
			}
			all, err := reg.Manifests()
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != len(seen) {
				t.Fatalf("Manifests lists %d entries, want %d", len(all), len(seen))
			}
		})
	}
}

// The full restore loop: train a learner through the scenario registry,
// publish its frozen state, fetch it back by manifest id and warm-start
// a fresh governor — re-freezing must reproduce the published bytes
// exactly (nothing lost or mutated through the registry).
func TestPublishRestoreIsByteIdentical(t *testing.T) {
	sc, err := scenario.Get("rtm/mpeg4-30fps/a15")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.Session(11, 400)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		s.Step(s.Decide())
	}
	var frozen bytes.Buffer
	if err := scenario.Freeze(s.Governor(), &frozen); err != nil {
		t.Fatal(err)
	}

	reg := registry.New(registry.NewMem())
	fp := registry.Fingerprint{
		Governor: "rtm", Workload: "mpeg4-30fps", Platform: "a15",
		Shape: registry.ShapeOf(frozen.Bytes()),
	}
	if fp.Shape == "" {
		t.Fatal("ShapeOf failed to summarise an rtm checkpoint")
	}
	m, err := reg.Publish(fp, registry.Training{Frames: 400}, frozen.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	state, err := reg.State(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.ConfigWarm(11, 400, bytes.NewReader(state))
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.NewSession(cfg) // Reset applies the staged checkpoint
	var refrozen bytes.Buffer
	if err := scenario.Freeze(cfg.Governor, &refrozen); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frozen.Bytes(), refrozen.Bytes()) {
		t.Fatal("publish → State → warm-start → freeze is not the identity")
	}
}

// Nearest's two tiers and its ranking: exact fingerprint beats any
// fallback however well-trained, the fallback tier admits only same-
// platform/same-governor manifests, and within a tier candidates rank
// by converged fraction, then frames, then id.
func TestNearestFallbackOrdering(t *testing.T) {
	reg := registry.New(registry.NewMem())
	pub := func(gov, wl, plat string, frames int64, conv float64, tag byte) registry.Manifest {
		t.Helper()
		m, err := reg.Publish(
			registry.Fingerprint{Governor: gov, Workload: wl, Platform: plat},
			registry.Training{Frames: frames, ConvergedFraction: conv},
			[]byte{tag}, // distinct content → distinct manifests
		)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	weakExact := pub("rtm", "mpeg4-30fps", "a15", 100, 0.2, 1)
	strongOther := pub("rtm", "h264-football", "a15", 5000, 0.99, 2)
	weakOther := pub("rtm", "fft-32fps", "a15", 50, 0.1, 3)
	pub("rtm", "mpeg4-30fps", "a7", 9000, 1.0, 4)    // wrong platform
	pub("mldtm", "mpeg4-30fps", "a15", 9000, 1.0, 5) // wrong governor

	// Exact tier wins over a much better-trained fallback.
	m, ok, err := reg.Nearest(registry.Fingerprint{Governor: "rtm", Workload: "mpeg4-30fps", Platform: "a15"})
	if err != nil || !ok {
		t.Fatalf("Nearest: ok=%v err=%v", ok, err)
	}
	if m.ID != weakExact.ID {
		t.Fatalf("exact tier lost to fallback: got %s, want %s", m.ID, weakExact.ID)
	}

	// No exact match: the best same-platform manifest wins, not the weak one.
	m, ok, err = reg.Nearest(registry.Fingerprint{Governor: "rtm", Workload: "parsec-x264", Platform: "a15"})
	if err != nil || !ok {
		t.Fatalf("Nearest fallback: ok=%v err=%v", ok, err)
	}
	if m.ID != strongOther.ID {
		t.Fatalf("fallback ranking: got %s, want best-converged %s (not %s)", m.ID, strongOther.ID, weakOther.ID)
	}

	// Empty workload skips the exact tier and still resolves.
	m, ok, err = reg.Nearest(registry.Fingerprint{Governor: "rtm", Platform: "a15"})
	if err != nil || !ok || m.ID != strongOther.ID {
		t.Fatalf("workload-free Nearest: got %s ok=%v err=%v", m.ID, ok, err)
	}

	// Nothing on the wanted platform at all.
	if _, ok, err = reg.Nearest(registry.Fingerprint{Governor: "rtm", Platform: "a15-membound"}); err != nil || ok {
		t.Fatalf("Nearest matched across platforms: ok=%v err=%v", ok, err)
	}

	// Equal training: the tie breaks deterministically by id.
	a := pub("updrl", "w", "a15", 10, 0.5, 6)
	b := pub("updrl", "w2", "a15", 10, 0.5, 7)
	lo := a.ID
	if b.ID < lo {
		lo = b.ID
	}
	m, ok, err = reg.Nearest(registry.Fingerprint{Governor: "updrl", Workload: "zz", Platform: "a15"})
	if err != nil || !ok || m.ID != lo {
		t.Fatalf("tie-break: got %s, want %s", m.ID, lo)
	}
}

// The registry-backed CheckpointStore must satisfy the same contract as
// sessionstore.Dir: save/load/list/delete with fs.ErrNotExist on absent
// ids, across both blob stores.
func TestCheckpointsAdapterContract(t *testing.T) {
	for name, b := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var cs sessionstore.CheckpointStore = registry.Checkpoints(b)
			if _, err := cs.Load("ghost"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Load of absent id: %v", err)
			}
			if err := cs.Save("c0", []byte("state-0")); err != nil {
				t.Fatal(err)
			}
			if err := cs.Save("c1", []byte("state-1")); err != nil {
				t.Fatal(err)
			}
			if err := cs.Save("c0", []byte("state-0b")); err != nil { // replace
				t.Fatal(err)
			}
			got, err := cs.Load("c0")
			if err != nil || string(got) != "state-0b" {
				t.Fatalf("Load(c0) = %q, %v", got, err)
			}
			ids, err := cs.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 2 || ids[0] != "c0" || ids[1] != "c1" {
				t.Fatalf("List = %v", ids)
			}
			if err := cs.Delete("c0"); err != nil {
				t.Fatal(err)
			}
			if err := cs.Delete("c0"); err != nil { // idempotent
				t.Fatal(err)
			}
			if _, err := cs.Load("c0"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("Load after delete: %v", err)
			}

			// Session checkpoints must not leak into the manifest index.
			reg := registry.New(b)
			ms, err := reg.Manifests()
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) != 0 {
				t.Fatalf("session checkpoints leaked into manifests: %+v", ms)
			}
		})
	}
}

// Key hygiene: traversal-shaped and malformed keys must be rejected by
// both stores before they touch storage.
func TestBlobKeyValidation(t *testing.T) {
	for name, b := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, key := range []string{"", "..", "a/../b", "a//b", "/a", "a/", "a\x00b", "säge"} {
				if err := b.Put(key, []byte("x")); err == nil {
					t.Errorf("Put accepted illegal key %q", key)
				}
				if _, err := b.Get(key); err == nil {
					t.Errorf("Get accepted illegal key %q", key)
				}
			}
			// Legal nested keys work.
			if err := b.Put("a/b/c.state", []byte("x")); err != nil {
				t.Fatal(err)
			}
			keys, err := b.List("a/")
			if err != nil || len(keys) != 1 || keys[0] != "a/b/c.state" {
				t.Fatalf("List(a/) = %v, %v", keys, err)
			}
		})
	}
}

// Corrupting a content-addressed blob must surface at State as a
// checksum failure, never as silently poisoned learning state.
func TestStateVerifiesChecksum(t *testing.T) {
	b := registry.NewMem()
	reg := registry.New(b)
	m, err := reg.Publish(
		registry.Fingerprint{Governor: "rtm", Workload: "w", Platform: "a15"},
		registry.Training{}, []byte("learnt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("blob/"+m.BlobSHA256, []byte("corrupt")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.State(m.ID); err == nil {
		t.Fatal("State returned corrupted bytes without error")
	}
}

// countingStore wraps a BlobStore, counting Gets — the probe for the
// StateOf memo.
type countingStore struct {
	registry.BlobStore
	gets int
}

func (c *countingStore) Get(key string) ([]byte, error) {
	c.gets++
	return c.BlobStore.Get(key)
}

// A warm-start storm fetches the same manifest's state over and over;
// StateOf must pay the blob read and checksum once and answer every
// repeat from its memo. A failed (corrupted) read must NOT be memoised.
func TestStateOfMemoisesBlobReads(t *testing.T) {
	cs := &countingStore{BlobStore: registry.NewMem()}
	reg := registry.New(cs)
	m, err := reg.Publish(
		registry.Fingerprint{Governor: "rtm", Workload: "w", Platform: "a15"},
		registry.Training{}, []byte("learnt state"))
	if err != nil {
		t.Fatal(err)
	}

	cs.gets = 0
	first, err := reg.StateOf(m)
	if err != nil {
		t.Fatal(err)
	}
	if cs.gets != 1 {
		t.Fatalf("first StateOf made %d blob reads, want 1", cs.gets)
	}
	for i := 0; i < 10; i++ {
		state, err := reg.StateOf(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(state, first) {
			t.Fatal("memoised StateOf returned different bytes")
		}
	}
	if cs.gets != 1 {
		t.Fatalf("10 repeat StateOf calls made %d extra blob reads, want 0", cs.gets-1)
	}

	// A corrupt blob errors on every read: the failure path must bypass
	// the memo entirely.
	bad, err := reg.Publish(
		registry.Fingerprint{Governor: "rtm", Workload: "w2", Platform: "a15"},
		registry.Training{}, []byte("other state"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.BlobStore.Put("blob/"+bad.BlobSHA256, []byte("corrupt")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := reg.StateOf(bad); err == nil {
			t.Fatal("StateOf returned corrupted bytes without error")
		}
	}
}
