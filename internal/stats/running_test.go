package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var r Running
	r.AddAll(xs)
	if got, want := r.Mean(), Mean(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("running mean %v != batch mean %v", got, want)
	}
	if got, want := r.Variance(), Variance(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("running var %v != batch var %v", got, want)
	}
	if got, want := r.Min(), Min(xs); got != want {
		t.Errorf("running min %v != batch min %v", got, want)
	}
	if got, want := r.Max(), Max(xs); got != want {
		t.Errorf("running max %v != batch max %v", got, want)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) ||
		!math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("empty Running must report NaN statistics")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(5)
	r.Reset()
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Fatal("Reset must empty the accumulator")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestRunningMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		// Constrain to finite values; quick can generate NaN/Inf which are
		// not meaningful workloads here.
		sanitize := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 1e6))
				}
			}
			return out
		}
		a, b = sanitize(a), sanitize(b)
		var ra, rb, rboth Running
		ra.AddAll(a)
		rb.AddAll(b)
		rboth.AddAll(a)
		rboth.AddAll(b)
		ra.Merge(&rb)
		if ra.N() != rboth.N() {
			return false
		}
		if ra.N() == 0 {
			return true
		}
		relEqual := func(a, b float64) bool {
			scale := math.Max(math.Abs(a), math.Abs(b))
			if scale < 1 {
				scale = 1
			}
			return math.Abs(a-b) <= 1e-9*scale
		}
		if !relEqual(ra.Mean(), rboth.Mean()) {
			return false
		}
		if ra.N() >= 2 && !relEqual(ra.Variance(), rboth.Variance()) {
			return false
		}
		return ra.Min() == rboth.Min() && ra.Max() == rboth.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // merging empty: no-op
	if a != before {
		t.Fatal("merging an empty accumulator changed the receiver")
	}
	b.Merge(&a) // merging into empty: copy
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty: N=%d mean=%v", b.N(), b.Mean())
	}
}
