package promlint

import (
	"strings"
	"testing"
)

func lintString(t *testing.T, s string) *Report {
	t.Helper()
	rep, err := Lint(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func wantProblem(t *testing.T, rep *Report, substr string) {
	t.Helper()
	for _, p := range rep.Problems {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Errorf("no problem containing %q in %v", substr, rep.Problems)
}

func TestCleanExposition(t *testing.T) {
	rep := lintString(t, `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# HELP req_total Requests served.
# TYPE req_total counter
req_total{path="/v1/decide",code="200"} 41
req_total{path="/v1/decide",code="500"} 1
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 3
lat_seconds_bucket{le="0.1"} 5
lat_seconds_bucket{le="+Inf"} 6
lat_seconds_sum 0.32
lat_seconds_count 6
`)
	if len(rep.Problems) != 0 {
		t.Fatalf("clean exposition flagged: %v", rep.Problems)
	}
	if rep.Series != 8 {
		t.Errorf("counted %d series, want 8", rep.Series)
	}
	if rep.Bytes == 0 {
		t.Error("byte count not reported")
	}
}

func TestEscapedLabelValues(t *testing.T) {
	rep := lintString(t, "# HELP m M.\n# TYPE m gauge\n"+
		`m{v="quote \" slash \\ newline \n end"} 1`+"\n")
	if len(rep.Problems) != 0 {
		t.Fatalf("escaped label value flagged: %v", rep.Problems)
	}
	bad := lintString(t, "# HELP m M.\n# TYPE m gauge\n"+
		`m{v="bad \q escape"} 1`+"\n")
	wantProblem(t, bad, "invalid escape")
}

func TestMissingTypeAndHelp(t *testing.T) {
	wantProblem(t, lintString(t, "loose_metric 1\n"), "no # TYPE")
	wantProblem(t, lintString(t, "# TYPE m gauge\nm 1\n"), "no # HELP")
	wantProblem(t, lintString(t, "# HELP m M.\n"), "no # TYPE")
	wantProblem(t, lintString(t, "m 1\n# HELP m M.\n# TYPE m gauge\n"), "no # TYPE")
}

func TestInvalidNames(t *testing.T) {
	wantProblem(t, lintString(t, "# HELP 0bad M.\n# TYPE 0bad gauge\n"), "invalid metric name")
	wantProblem(t, lintString(t, "# HELP m M.\n# TYPE m gauge\nm{0bad=\"x\"} 1\n"), "invalid label name")
	wantProblem(t, lintString(t, "# HELP m M.\n# TYPE m bogus\n"), "unknown metric type")
}

func TestDuplicateSeries(t *testing.T) {
	rep := lintString(t, "# HELP m M.\n# TYPE m gauge\nm{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2\n")
	wantProblem(t, rep, "duplicate series")
}

func TestHistogramBucketOrder(t *testing.T) {
	base := "# HELP h H.\n# TYPE h histogram\n"
	wantProblem(t, lintString(t, base+
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"0.05\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n"),
		"not strictly increasing")
	wantProblem(t, lintString(t, base+
		"h_bucket{le=\"0.1\"} 3\nh_bucket{le=\"0.2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"),
		"not cumulative")
	wantProblem(t, lintString(t, base+
		"h_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n"),
		"no +Inf")
	wantProblem(t, lintString(t, base+
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"),
		"!= _count")
	wantProblem(t, lintString(t, base+
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"),
		"no _sum")
}

func TestHistogramChildrenIndependent(t *testing.T) {
	// Two labeled children of one family each carry their own cumulative
	// sequence; counts resetting between children is not a violation.
	rep := lintString(t, `# HELP h H.
# TYPE h histogram
h_bucket{s="a",le="0.1"} 5
h_bucket{s="a",le="+Inf"} 5
h_sum{s="a"} 0.2
h_count{s="a"} 5
h_bucket{s="b",le="0.1"} 1
h_bucket{s="b",le="+Inf"} 1
h_sum{s="b"} 0.01
h_count{s="b"} 1
`)
	if len(rep.Problems) != 0 {
		t.Fatalf("independent children flagged: %v", rep.Problems)
	}
}

func TestBadValues(t *testing.T) {
	wantProblem(t, lintString(t, "# HELP m M.\n# TYPE m gauge\nm notanumber\n"), "bad sample value")
	rep := lintString(t, "# HELP m M.\n# TYPE m gauge\nm +Inf\n")
	if len(rep.Problems) != 0 {
		t.Fatalf("+Inf value flagged: %v", rep.Problems)
	}
}
