package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qgov/internal/serve"
	"qgov/internal/serve/client"
)

// promBody fetches /v1/metrics in Prometheus form from a base URL.
// extraQuery entries ("top=2") append to the query string.
func promBody(t *testing.T, cl *http.Client, url string, viaAccept bool, extraQuery ...string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	var query []string
	if viaAccept {
		req.Header.Set("Accept", "text/plain")
	} else {
		query = append(query, "format=prometheus")
	}
	query = append(query, extraQuery...)
	req.URL.RawQuery = strings.Join(query, "&")
	resp, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus metrics served as %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// mustContain asserts each wanted line is present.
func mustContain(t *testing.T, body string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(body, w) {
			t.Errorf("exposition missing %q in:\n%s", w, body)
		}
	}
}

// /v1/metrics must serve the Prometheus text exposition when asked via
// ?format=prometheus or Accept: text/plain. The default scrape is O(1)
// in session count: one server-wide latency histogram with cumulative
// le buckets summing to the decision count, and no per-session series
// at all. Per-session detail (histogram, learning gauges) appears only
// under ?top=K. The default content type stays JSON.
func TestMetricsPrometheusExposition(t *testing.T) {
	const decisions = 5
	h := newTestServer(t, serve.Options{})
	if st := h.post("/v1/sessions", map[string]any{"id": "p0", "governor": "rtm", "seed": 3}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	obs := steadyObs()
	for i := 0; i < decisions; i++ {
		obs.Epoch = i
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := h.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: "p0", Obs: obsFromGov(obs)}},
		}, &resp); st != http.StatusOK || resp.Decisions[0].Error != "" {
			t.Fatalf("decide %d: status %d %+v", i, st, resp.Decisions)
		}
	}

	for _, viaAccept := range []bool{false, true} {
		body := promBody(t, h.ts.Client(), h.ts.URL, viaAccept)
		mustContain(t, body,
			fmt.Sprintf("rtmd_decisions_total %d", decisions),
			"rtmd_sessions 1",
			"# TYPE rtmd_decision_latency_seconds histogram",
			fmt.Sprintf(`rtmd_decision_latency_seconds_bucket{le="+Inf"} %d`, decisions),
			"rtmd_decision_latency_seconds_sum ",
			fmt.Sprintf("rtmd_decision_latency_seconds_count %d", decisions),
		)
		// The default scrape must not scale with sessions: no series may
		// carry a session label until the operator opts in with ?top=K.
		if strings.Contains(body, `session="`) {
			t.Errorf("default exposition carries per-session series:\n%s", body)
		}
		// A flat server relays nothing: the routed-hop families must be
		// absent, not rendered as empty series.
		if strings.Contains(body, "rtmd_route_") {
			t.Errorf("flat server exposition contains routed-hop metrics:\n%s", body)
		}
		// Buckets are cumulative and render one line per log-width bin:
		// every finite le must be non-decreasing in count and strictly
		// increasing in edge, ending at the +Inf line holding the full
		// count. The overflow saturation signal rides alongside at zero —
		// five quiet decisions cannot escape a 1 s range.
		mustContain(t, body,
			"# TYPE rtmd_decision_latency_overflow_total counter",
			"rtmd_decision_latency_overflow_total 0",
		)
		prevCount, prevLE, buckets := -1, 0.0, 0
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, `rtmd_decision_latency_seconds_bucket{le="`) ||
				strings.Contains(line, `le="+Inf"`) {
				continue
			}
			var le float64
			var n int
			rest := line[strings.Index(line, `le="`)+4:]
			fmt.Sscanf(rest[:strings.Index(rest, `"`)], "%g", &le)
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n)
			if n < prevCount {
				t.Errorf("buckets not cumulative at le=%g: %d < %d", le, n, prevCount)
			}
			if le <= prevLE {
				t.Errorf("bucket edges not increasing: le=%g after %g", le, prevLE)
			}
			prevCount, prevLE = n, le
			buckets++
		}
		if buckets != 70 {
			t.Errorf("rendered %d finite buckets, want 70", buckets)
		}
		if prevCount != decisions {
			t.Errorf("largest finite bucket holds %d, want all %d decisions", prevCount, decisions)
		}
		mustContain(t, body,
			"# TYPE rtmd_checkpoint_writes_total counter",
			"rtmd_checkpoint_writes_total 0",
			"rtmd_checkpoint_skipped_total 0",
			// Go runtime health rides on every scrape.
			"# TYPE rtmd_go_goroutines gauge",
			"rtmd_go_goroutines ",
			"rtmd_go_gc_pause_p99_seconds ",
			"rtmd_go_gc_cycles_total ",
			"rtmd_go_heap_live_bytes ",
			"rtmd_go_sched_latency_p99_seconds ",
		)
	}

	// ?top=K opts back into per-session detail, under the separate
	// rtmd_session_* families.
	body := promBody(t, h.ts.Client(), h.ts.URL, false, "top=4")
	mustContain(t, body,
		"# TYPE rtmd_session_decision_latency_seconds histogram",
		fmt.Sprintf(`rtmd_session_decision_latency_seconds_bucket{session="p0",le="+Inf"} %d`, decisions),
		`rtmd_session_decision_latency_seconds_sum{session="p0"} `,
		fmt.Sprintf(`rtmd_session_decision_latency_seconds_count{session="p0"} %d`, decisions),
		`rtmd_session_decision_latency_overflow_total{session="p0"} 0`,
		`rtmd_session_explorations{session="p0"}`,
		fmt.Sprintf(`rtmd_session_epochs{session="p0"} %d`, decisions),
		`rtmd_session_epsilon{session="p0"}`,
		fmt.Sprintf(`rtmd_session_visits{session="p0"} %d`, decisions),
		`rtmd_session_converged_fraction{session="p0"}`,
	)

	// The default content type is unchanged JSON, and the routed-hop
	// fields stay off a flat server's document entirely.
	var m metricsResponse
	if st := h.get("/v1/metrics", &m); st != http.StatusOK || m.Decisions != decisions {
		t.Fatalf("JSON metrics: status %d %+v", st, m)
	}
	var raw map[string]json.RawMessage
	if st := h.get("/v1/metrics", &raw); st != http.StatusOK {
		t.Fatalf("JSON metrics: status %d", st)
	}
	for _, key := range []string{"route_hops", "route_inflight"} {
		if _, present := raw[key]; present {
			t.Errorf("flat server metrics JSON carries %q", key)
		}
	}
}

// The router serves the same exposition over its fleet-merged metrics:
// the replicas' aggregate latency histograms merge into one, per-session
// detail stays behind ?top=K, and the router's own relay-hop histograms
// ride alongside.
func TestRouterPrometheusMetrics(t *testing.T) {
	_, addrs := newFleet(t, 2, serve.Options{})
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtHTTP := httptest.NewServer(rt.Handler())
	defer rtHTTP.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rtTCP := serve.NewRouterTCP(rt, lis)
	go func() { _ = rtTCP.Serve() }()
	defer rtTCP.Close()
	cl, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ids := []string{"pr-0", "pr-1", "pr-2"}
	for i, id := range ids {
		body := fmt.Sprintf(`{"id":%q,"governor":"rtm","seed":%d}`, id, i+1)
		if st, resp, err := cl.CreateSession([]byte(body)); err != nil || st != http.StatusCreated {
			t.Fatalf("create %s: status %d err %v (%s)", id, st, err, resp)
		}
		if d, err := cl.Decide(id, steadyObs()); err != nil || d.Err != "" {
			t.Fatalf("decide %s: %v %s", id, err, d.Err)
		}
	}

	body := promBody(t, rtHTTP.Client(), rtHTTP.URL, false)
	mustContain(t, body,
		fmt.Sprintf("rtmd_decisions_total %d", len(ids)),
		fmt.Sprintf("rtmd_sessions %d", len(ids)),
		"# TYPE rtmd_route_hop_seconds histogram",
		`rtmd_route_hop_seconds_count{replica="`,
		"rtmd_route_inflight_requests 0",
		// The fleet-merged aggregate: every decide across both replicas in
		// one unlabeled histogram.
		fmt.Sprintf("rtmd_decision_latency_seconds_count %d", len(ids)),
		// The router reports its own runtime health, not the replicas'.
		"rtmd_go_goroutines ",
	)
	if strings.Contains(body, `session="`) {
		t.Errorf("default router exposition carries per-session series:\n%s", body)
	}

	// Opting in with ?top=K surfaces the fleet's per-session detail.
	topBody := promBody(t, rtHTTP.Client(), rtHTTP.URL, false, "top=8")
	for _, id := range ids {
		mustContain(t, topBody, fmt.Sprintf(`rtmd_session_decision_latency_seconds_count{session=%q} 1`, id))
	}

	// Each routed decide above was one relayed hop; the per-replica hop
	// counts must sum to exactly that across the fleet.
	hops := 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "rtmd_route_hop_seconds_count{") {
			var n int
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n)
			hops += n
		}
	}
	if hops != len(ids) {
		t.Errorf("route hop counts sum to %d, want %d", hops, len(ids))
	}

	// The same document serves the JSON tier: route_hops per replica and
	// the in-flight gauge, absent on a flat server by construction.
	resp, err := rtHTTP.Client().Get(rtHTTP.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mj struct {
		RouteHops map[string]struct {
			Count int `json:"count"`
		} `json:"route_hops"`
		RouteInflight *int64 `json:"route_inflight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mj); err != nil {
		t.Fatal(err)
	}
	if mj.RouteInflight == nil || *mj.RouteInflight != 0 {
		t.Errorf("route_inflight = %v, want 0 (present)", mj.RouteInflight)
	}
	jsonHops := 0
	for _, h := range mj.RouteHops {
		jsonHops += h.Count
	}
	if jsonHops != len(ids) {
		t.Errorf("JSON route_hops counts sum to %d, want %d", jsonHops, len(ids))
	}
}
