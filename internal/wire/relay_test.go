package wire_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"qgov/internal/wire"
)

// TestObserveMeta pins the zero-copy relay metadata against the full
// decoder on a representative frame, and its rejection of truncated or
// bound-violating prefixes.
func TestObserveMeta(t *testing.T) {
	obs := sampleObs()
	frame, err := wire.AppendObserveBytes(nil, 42, wire.FlagForwarded, []byte("cluster-7"), &obs)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, _, err := wire.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}

	id, flags, sess, err := wire.ObserveMeta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || flags != wire.FlagForwarded || string(sess) != "cluster-7" {
		t.Fatalf("ObserveMeta = (%d, %#x, %q), want (42, forwarded, cluster-7)", id, flags, sess)
	}

	// Truncation anywhere inside the fixed prefix or the session bytes
	// must fail with ErrTruncated, never panic or misread.
	for cut := 0; cut < len(payload) && cut < 58+len("cluster-7"); cut++ {
		if _, _, _, err := wire.ObserveMeta(payload[:cut]); !errors.Is(err, wire.ErrTruncated) {
			t.Fatalf("ObserveMeta on %d-byte prefix: err %v, want ErrTruncated", cut, err)
		}
	}

	// A forged session length beyond MaxSession must be rejected before
	// any slicing happens.
	forged := bytes.Clone(payload)
	forged[57] = wire.MaxSession + 1
	if _, _, _, err := wire.ObserveMeta(forged); err == nil || !strings.Contains(err.Error(), "session id") {
		t.Fatalf("ObserveMeta accepted a forged session length: %v", err)
	}
}

// TestSetObserveID: the relay's per-request id rewrite must be exact
// and in place.
func TestSetObserveID(t *testing.T) {
	obs := sampleObs()
	frame, err := wire.AppendObserve(nil, 7, "s0", &obs)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[wire.HeaderSize:]
	if err := wire.SetObserveID(payload, 0xabcdef01); err != nil {
		t.Fatal(err)
	}
	var m wire.Observe
	if err := m.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if m.ID != 0xabcdef01 || string(m.Session) != "s0" || !observationsBitEqual(m.Obs, obs) {
		t.Fatalf("rewrite mangled the frame: %+v", m)
	}
	if err := wire.SetObserveID(payload[:3], 1); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("SetObserveID on a 3-byte payload: err %v, want ErrTruncated", err)
	}
}

// TestAppendFrame: framing a payload verbatim must reproduce a frame
// the decoder accepts unchanged, and payloads over the wire bound must
// be rejected.
func TestAppendFrame(t *testing.T) {
	payload := []byte("not even a real payload; framing is payload-agnostic")
	frame, err := wire.AppendFrame(nil, wire.MsgObserve, payload)
	if err != nil {
		t.Fatal(err)
	}
	typ, got, rest, err := wire.DecodeFrame(frame)
	if err != nil || typ != wire.MsgObserve || len(rest) != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: typ %d rest %d err %v", typ, len(rest), err)
	}

	if _, err := wire.AppendFrame(nil, wire.MsgObserve, make([]byte, wire.MaxPayload+1)); !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("oversize payload: err %v, want ErrFrameTooLarge", err)
	}

	// Appending to an existing buffer must leave the prefix intact.
	prefix := []byte{1, 2, 3}
	out, err := wire.AppendFrame(bytes.Clone(prefix), wire.MsgDecide, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:3], prefix) {
		t.Fatal("AppendFrame clobbered the destination prefix")
	}
	typ, got, rest, err = wire.DecodeFrame(out[3:])
	if err != nil || typ != wire.MsgDecide || len(rest) != 0 || !bytes.Equal(got, payload) {
		t.Fatalf("appended frame: typ %d rest %d err %v", typ, len(rest), err)
	}
}
