package serve_test

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"sync"
	"testing"

	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/sim"
	"qgov/internal/workload"
)

// driveHTTPRecording runs a sim.Session to completion over the JSON API,
// returning every OPP decision in order.
func (h *testServer) driveHTTPRecording(id string, s *sim.Session) ([]int, *sim.Result, error) {
	var opps []int
	for !s.Done() {
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := h.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: id, Obs: obsOf(s)}},
		}, &resp); st != http.StatusOK {
			return nil, nil, fmt.Errorf("decide returned %d", st)
		}
		if len(resp.Decisions) != 1 || resp.Decisions[0].Error != "" {
			return nil, nil, fmt.Errorf("decide failed: %+v", resp.Decisions)
		}
		opps = append(opps, resp.Decisions[0].OPPIdx)
		s.Step(resp.Decisions[0].OPPIdx)
	}
	return opps, s.Result(), nil
}

// driveTCPRecording is the binary-transport twin of driveHTTPRecording.
func driveTCPRecording(cl *client.Client, id string, s *sim.Session) ([]int, *sim.Result, error) {
	var opps []int
	for !s.Done() {
		d, err := cl.Decide(id, s.Observe())
		if err != nil {
			return nil, nil, err
		}
		if d.Err != "" {
			return nil, nil, fmt.Errorf("decide failed: %s", d.Err)
		}
		opps = append(opps, d.OPPIdx)
		s.Step(d.OPPIdx)
	}
	return opps, s.Result(), nil
}

// The same scenario driven over HTTP+JSON and over binary TCP must
// produce byte-identical per-session decision streams, physical
// aggregates, and frozen checkpoints — HTTP is the differential-testing
// oracle for the fast path. Sessions run concurrently over one shared
// multiplexed client, so under -race this also exercises the connection
// batching against the session store.
func TestCrossTransportEquivalence(t *testing.T) {
	const (
		scn      = "rtm/mpeg4-30fps/a15"
		frames   = 120
		sessions = 6
	)
	dirHTTP, dirTCP := t.TempDir(), t.TempDir()
	hHTTP := newTestServer(t, serve.Options{CheckpointDir: dirHTTP})
	hTCP := newTestServer(t, serve.Options{CheckpointDir: dirTCP})
	ts := newTCPServer(t, hTCP)

	cl, err := client.Dial(ts.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type lane struct {
		id   string
		seed int64
	}
	lanes := make([]lane, sessions)
	for i := range lanes {
		lanes[i] = lane{id: fmt.Sprintf("eq-%d", i), seed: int64(i + 1)}
		tr := workload.MPEG4At30(lanes[i].seed, frames)
		create := map[string]any{
			"id":             lanes[i].id,
			"governor":       "rtm",
			"period_s":       tr.RefTimeS,
			"seed":           lanes[i].seed,
			"calibration_cc": tr.MaxPerFrame(),
		}
		if st := hHTTP.post("/v1/sessions", create, nil); st != http.StatusCreated {
			t.Fatalf("create %s on HTTP server returned %d", lanes[i].id, st)
		}
		if st := hTCP.post("/v1/sessions", create, nil); st != http.StatusCreated {
			t.Fatalf("create %s on TCP server returned %d", lanes[i].id, st)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for _, l := range lanes {
		wg.Add(1)
		go func(l lane) {
			defer wg.Done()
			oppsH, resH, err := hHTTP.driveHTTPRecording(l.id, sim.NewSession(scenarioConfig(t, scn, l.seed, frames)))
			if err != nil {
				errs <- fmt.Errorf("%s over HTTP: %w", l.id, err)
				return
			}
			oppsT, resT, err := driveTCPRecording(cl, l.id, sim.NewSession(scenarioConfig(t, scn, l.seed, frames)))
			if err != nil {
				errs <- fmt.Errorf("%s over TCP: %w", l.id, err)
				return
			}
			if len(oppsH) != len(oppsT) {
				errs <- fmt.Errorf("%s: %d decisions over HTTP, %d over TCP", l.id, len(oppsH), len(oppsT))
				return
			}
			for i := range oppsH {
				if oppsH[i] != oppsT[i] {
					errs <- fmt.Errorf("%s: decision %d is %d over HTTP, %d over TCP", l.id, i, oppsH[i], oppsT[i])
					return
				}
			}
			if phys(resH) != phys(resT) {
				errs <- fmt.Errorf("%s: physical aggregates diverged:\n%+v\nvs\n%+v", l.id, phys(resH), phys(resT))
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Identical learning implies identical frozen state, byte for byte.
	if _, err := hHTTP.srv.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := hTCP.srv.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	for _, l := range lanes {
		a, err := os.ReadFile(dirHTTP + "/" + l.id + ".state")
		if err != nil {
			t.Fatalf("HTTP checkpoint for %s: %v", l.id, err)
		}
		b, err := os.ReadFile(dirTCP + "/" + l.id + ".state")
		if err != nil {
			t.Fatalf("TCP checkpoint for %s: %v", l.id, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: checkpoints differ between transports (%d vs %d bytes)", l.id, len(a), len(b))
		}
	}
}
