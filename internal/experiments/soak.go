package experiments

import (
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"qgov/internal/loadgen"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/stats"
)

// The soak experiment: drive a loadgen schedule — heterogeneous clients,
// lifecycle churn, delete storms — against a real serving topology in
// this process and measure what a million-session deployment cares
// about: decide tail latency under churn, memory per live session, how
// much of the churn peak the server gives back, and checkpoint write
// amplification. The Baseline toggle re-enables the two pre-fix
// behaviours (no session-map shrink, checkpoint-everything sweeps) so
// the fixes stay measurable against what they replaced.

// SoakConfig configures one soak run.
type SoakConfig struct {
	// Spec is the workload schedule.
	Spec loadgen.Spec
	// Topology is "flat" (one server), "routed" (router in front of
	// Replicas servers) or "direct" (ring-aware fleet client against the
	// same replicas). Empty means flat.
	Topology string
	// Replicas sizes the routed/direct fleet (default 3).
	Replicas int
	// Lanes and BatchMax tune the runner (loadgen.RunOptions).
	Lanes    int
	BatchMax int
	// Baseline disables both churn fixes — the session-map shrink and the
	// dirty-checkpoint skip — to measure the pre-fix behaviour.
	Baseline bool
	// LiveSampleEvery, when > 0, samples the LIVE heap at this cadence by
	// forcing a GC first: HeapAlloc right after a collection is reachable
	// memory, not reachable-plus-garbage, so the per-session figure it
	// yields is the one a capacity plan can use. The forced collections
	// cost throughput (concurrent mark competes with the run), so the
	// comparison benchmarks leave this off and only the memory-headline
	// runs pay for it.
	LiveSampleEvery time.Duration
	// CheckpointEvery enables the background checkpoint sweep; 0 runs
	// without checkpointing.
	CheckpointEvery time.Duration
	// CheckpointDir backs the sweep; empty with CheckpointEvery > 0 uses
	// a throwaway temp dir.
	CheckpointDir string
}

// SoakResult is one soak run's measurement.
type SoakResult struct {
	Topology string `json:"topology"`
	Baseline bool   `json:"baseline"`

	Events       int64   `json:"events"`
	Creates      int64   `json:"creates"`
	Deletes      int64   `json:"deletes"`
	Decides      int64   `json:"decides"`
	DecideErrors int64   `json:"decide_errors"`
	PeakLive     int64   `json:"peak_live"`
	Checksum     uint64  `json:"checksum"`
	WallS        float64 `json:"wall_s"`
	DecidesPerS  float64 `json:"decides_per_s"`

	// Batch round-trip quantiles in µs (client side, so they survive the
	// churn that truncates per-session server histograms). -1 marks a
	// quantile the histogram could not resolve (overflow).
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`

	// Per-stage attribution of those round trips. ServeP*US is decide
	// time under the session lock, merged across every server in the
	// stack; the gap to the client RTT above is transport, batching and
	// (in routed topologies) the relay. RouteHopP*US, present only with
	// a router in the path, is the router→replica→router hop, so
	// RTT − hop ≈ client-side cost and hop − serve ≈ inter-tier
	// transport. -1 marks an unresolvable (overflowed) quantile.
	ServeDecides  int64   `json:"serve_decides,omitempty"`
	ServeP50US    float64 `json:"serve_p50_us,omitempty"`
	ServeP99US    float64 `json:"serve_p99_us,omitempty"`
	RouteHops     int64   `json:"route_hops,omitempty"`
	RouteHopP50US float64 `json:"route_hop_p50_us,omitempty"`
	RouteHopP99US float64 `json:"route_hop_p99_us,omitempty"`

	// Memory trajectory: Go heap (whole process — servers and clients
	// both live here) sampled through the run, and OS RSS where
	// /proc/self/statm exists. End values are after the drain and a
	// forced GC: what churn permanently cost.
	HeapStartB uint64 `json:"heap_start_b"`
	HeapPeakB  uint64 `json:"heap_peak_b"`
	HeapEndB   uint64 `json:"heap_end_b"`
	RSSPeakB   uint64 `json:"rss_peak_b,omitempty"`
	RSSEndB    uint64 `json:"rss_end_b,omitempty"`
	// BytesPerSession is heap growth at peak per peak live session. The
	// peak is an un-GCed HeapAlloc reading, so this counts float garbage
	// awaiting collection alongside reachable session state — it tracks
	// GC pressure, not footprint, and historically reads ~2x the live
	// figure below. Kept with these semantics for comparability across
	// BENCH_* generations.
	BytesPerSession float64 `json:"bytes_per_session"`
	// LiveHeapPeakB is the peak of the forced-GC samples (reachable
	// memory only) — 0 unless LiveSampleEvery was set.
	LiveHeapPeakB uint64 `json:"live_heap_peak_b,omitempty"`
	// LiveBytesPerSession is live-heap growth at peak per peak live
	// session: the honest per-session footprint, and what the CI
	// tripwire gates on.
	LiveBytesPerSession float64 `json:"live_bytes_per_session,omitempty"`
	// HeapRecoveredFrac is how much of the churn-peak heap growth
	// (peak−start) the drain gave back, clamped to [0,1]: GC timing can
	// land the end reading below the start (the drain returned memory
	// the baseline was still holding), which used to report as >100%
	// recovered — a number that made the metric look broken rather than
	// the drain thorough.
	HeapRecoveredFrac float64 `json:"heap_recovered_frac"`

	// The Q-table pool after the drain: pages/bytes still interned (>0
	// with every session deleted means a refcount leak) and cumulative
	// copy-on-write faults across the run. Fleet-wide sums.
	QTablePoolPagesEnd int64 `json:"qtable_pool_pages_end"`
	QTablePoolBytesEnd int64 `json:"qtable_pool_bytes_end"`
	QTableCowFaults    int64 `json:"qtable_cow_faults"`

	CheckpointWrites  int64 `json:"checkpoint_writes"`
	CheckpointSkipped int64 `json:"checkpoint_skipped"`
}

// readRSS reads resident set bytes from /proc/self/statm (0 where the
// proc filesystem is absent).
func readRSS() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

func heapAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// soakTopology builds the serving stack for the config and returns the
// runner target, every serve.Server in the stack (for counter reads),
// the router when one is in the stack (for hop attribution) and a
// teardown.
func soakTopology(cfg SoakConfig) (loadgen.Target, []*serve.Server, *serve.Router, func(), error) {
	opt := serve.Options{
		CheckpointDir:          cfg.CheckpointDir,
		CheckpointEvery:        cfg.CheckpointEvery,
		CheckpointEverySession: cfg.Baseline,
		DisableStoreShrink:     cfg.Baseline,
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" {
		dir, err := os.MkdirTemp("", "soak-ckpt-*")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		opt.CheckpointDir = dir
		cleanups = append(cleanups, func() { _ = os.RemoveAll(dir) })
	}

	newReplica := func() (*serve.Server, string, error) {
		srv := serve.New(opt)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = srv.Close()
			return nil, "", err
		}
		tcp := serve.NewTCP(srv, lis)
		go func() { _ = tcp.Serve() }()
		cleanups = append(cleanups, func() {
			_ = tcp.Close()
			_ = srv.Close()
		})
		return srv, lis.Addr().String(), nil
	}

	topo := cfg.Topology
	if topo == "" {
		topo = "flat"
	}
	switch topo {
	case "flat":
		srv, addr, err := newReplica()
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		cl, err := client.Dial(addr)
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		cleanups = append(cleanups, func() { _ = cl.Close() })
		return cl, []*serve.Server{srv}, nil, cleanup, nil
	case "routed", "direct":
		n := cfg.Replicas
		if n <= 0 {
			n = 3
		}
		srvs := make([]*serve.Server, n)
		addrs := make([]string, n)
		for i := range srvs {
			srv, addr, err := newReplica()
			if err != nil {
				cleanup()
				return nil, nil, nil, nil, err
			}
			srvs[i], addrs[i] = srv, addr
		}
		rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		cleanups = append(cleanups, func() { _ = rt.Close() })
		rtLis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		rtTCP := serve.NewRouterTCP(rt, rtLis)
		go func() { _ = rtTCP.Serve() }()
		cleanups = append(cleanups, func() { _ = rtTCP.Close() })
		if topo == "direct" {
			fl, err := client.DialFleet(rtLis.Addr().String())
			if err != nil {
				cleanup()
				return nil, nil, nil, nil, err
			}
			cleanups = append(cleanups, func() { _ = fl.Close() })
			return fl, srvs, rt, cleanup, nil
		}
		cl, err := client.Dial(rtLis.Addr().String())
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		cleanups = append(cleanups, func() { _ = cl.Close() })
		return cl, srvs, rt, cleanup, nil
	default:
		cleanup()
		return nil, nil, nil, nil, fmt.Errorf("soak: unknown topology %q (flat, routed or direct)", cfg.Topology)
	}
}

// finiteQ reads one quantile from the latency histogram, mapping an
// unresolvable (overflowed) quantile to -1 rather than +Inf so results
// stay JSON-encodable.
func finiteQ(rep *loadgen.Report, q float64) float64 {
	v := rep.Latency.Quantile(q)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

// RunSoak executes one soak run and measures it.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	target, srvs, rt, cleanup, err := soakTopology(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	g, err := loadgen.New(cfg.Spec)
	if err != nil {
		return nil, err
	}

	// Settle before the baseline heap reading.
	runtime.GC()
	heapStart := heapAlloc()

	// Sample the memory trajectory while the run executes.
	var heapPeak, rssPeak, livePeak atomic.Uint64
	stop := make(chan struct{})
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		var live *time.Ticker
		var liveC <-chan time.Time
		if cfg.LiveSampleEvery > 0 {
			live = time.NewTicker(cfg.LiveSampleEvery)
			liveC = live.C
			defer live.Stop()
		}
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if h := heapAlloc(); h > heapPeak.Load() {
					heapPeak.Store(h)
				}
				if r := readRSS(); r > rssPeak.Load() {
					rssPeak.Store(r)
				}
			case <-liveC:
				// Collect, then read: HeapAlloc after a GC is reachable
				// memory — the footprint a capacity plan buys RAM for.
				runtime.GC()
				if h := heapAlloc(); h > livePeak.Load() {
					livePeak.Store(h)
				}
			}
		}
	}()

	rep, runErr := loadgen.Run(g, target, loadgen.RunOptions{Lanes: cfg.Lanes, BatchMax: cfg.BatchMax})
	close(stop)
	<-sampler
	if runErr != nil {
		return nil, runErr
	}

	// What did churn permanently cost? Two GCs so finalizer-held memory
	// clears too.
	runtime.GC()
	runtime.GC()
	heapEnd := heapAlloc()
	rssEnd := readRSS()
	if h := heapEnd; h > heapPeak.Load() {
		heapPeak.Store(h)
	}

	res := &SoakResult{
		Topology:     cfg.Topology,
		Baseline:     cfg.Baseline,
		Events:       rep.Events,
		Creates:      rep.Creates,
		Deletes:      rep.Deletes,
		Decides:      rep.Decides,
		DecideErrors: rep.DecideErrors,
		PeakLive:     rep.PeakLive,
		Checksum:     rep.Checksum,
		WallS:        rep.WallS,
		P50US:        finiteQ(rep, 0.50),
		P99US:        finiteQ(rep, 0.99),
		P999US:       finiteQ(rep, 0.999),
		HeapStartB:   heapStart,
		HeapPeakB:    heapPeak.Load(),
		HeapEndB:     heapEnd,
		RSSPeakB:     rssPeak.Load(),
		RSSEndB:      rssEnd,
	}
	if res.Topology == "" {
		res.Topology = "flat"
	}
	if rep.WallS > 0 {
		res.DecidesPerS = float64(rep.Decides) / rep.WallS
	}
	if rep.PeakLive > 0 && res.HeapPeakB > heapStart {
		res.BytesPerSession = float64(res.HeapPeakB-heapStart) / float64(rep.PeakLive)
	}
	res.LiveHeapPeakB = livePeak.Load()
	if rep.PeakLive > 0 && res.LiveHeapPeakB > heapStart {
		res.LiveBytesPerSession = float64(res.LiveHeapPeakB-heapStart) / float64(rep.PeakLive)
	}
	if res.HeapPeakB > heapStart {
		res.HeapRecoveredFrac = float64(res.HeapPeakB-heapEnd) / float64(res.HeapPeakB-heapStart)
		if res.HeapRecoveredFrac > 1 {
			res.HeapRecoveredFrac = 1 // drain gave back pre-run memory too
		}
		if res.HeapRecoveredFrac < 0 {
			res.HeapRecoveredFrac = 0
		}
	}
	for _, srv := range srvs {
		w, sk := srv.CheckpointCounters()
		res.CheckpointWrites += w
		res.CheckpointSkipped += sk
		pages, bytes, faults := srv.QPoolStats()
		res.QTablePoolPagesEnd += pages
		res.QTablePoolBytesEnd += bytes
		res.QTableCowFaults += faults
	}

	// Per-stage attribution: decide time under the session lock (merged
	// across the stack's servers) and, with a router in the path, the
	// relayed hop.
	histQ := func(h interface {
		Quantile(float64) float64
	}, q float64) float64 {
		v := h.Quantile(q)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return -1
		}
		return v
	}
	var serveLat *stats.Histogram
	for _, srv := range srvs {
		h := srv.DecideLatency()
		if h == nil {
			continue
		}
		if serveLat == nil {
			serveLat = h
			continue
		}
		if err := serveLat.Merge(h); err != nil {
			return res, fmt.Errorf("soak: merging decide latency: %w", err)
		}
	}
	if serveLat != nil && serveLat.Count() > 0 {
		res.ServeDecides = int64(serveLat.Count())
		res.ServeP50US = histQ(serveLat, 0.50)
		res.ServeP99US = histQ(serveLat, 0.99)
	}
	if rt != nil {
		if hop := rt.HopLatency(); hop != nil && hop.Count() > 0 {
			res.RouteHops = int64(hop.Count())
			res.RouteHopP50US = histQ(hop, 0.50)
			res.RouteHopP99US = histQ(hop, 0.99)
		}
	}
	if rep.CreateErrors != 0 || rep.DeleteErrors != 0 {
		return res, fmt.Errorf("soak: control-plane errors: %d create, %d delete", rep.CreateErrors, rep.DeleteErrors)
	}
	return res, nil
}
