package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a binned histogram over a closed interval. Bins are either
// fixed-width (NewHistogram) or log-width (NewLogHistogram: geometrically
// spaced edges, constant resolution per decade). Samples outside the
// interval are counted in dedicated underflow/overflow buckets so that no
// observation is silently dropped — the workload pre-characterisation pass
// ("design space exploration" in the paper) uses the histogram to pick the
// N discretisation levels and must see outliers, and the serving tier's
// latency quantiles must know when the tail escaped the range.
type Histogram struct {
	lo, hi    float64
	width     float64 // fixed-bin width; 0 in log mode
	logScale  bool
	invLogK   float64 // bins / ln(hi/lo); only set in log mode
	// counts are uint32: a per-session or per-lane histogram never sees
	// 4B samples in one bin, and the narrower lane matters when a serving
	// fleet holds one histogram per live session. total stays int, so
	// Count and quantile ranks are unaffected.
	counts    []uint32
	underflow int
	overflow  int
	total     int
	sum       float64
}

// NewHistogram creates a fixed-width histogram over [lo, hi] with the given
// number of bins. It panics if bins < 1 or lo >= hi: both indicate caller
// bugs, not runtime conditions.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram needs at least one bin")
	}
	if !(lo < hi) {
		panic("stats: NewHistogram needs lo < hi")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]uint32, bins),
	}
}

// NewLogHistogram creates a histogram over [lo, hi] whose bin edges are
// geometrically spaced: bin i spans [lo·r^i, lo·r^(i+1)) with
// r = (hi/lo)^(1/bins). Relative resolution is constant across the range,
// so a single instance can resolve both a 2µs fast path and a 100ms stall
// — which is what decide latency under churn needs. It panics unless
// 0 < lo < hi and bins >= 1.
func NewLogHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewLogHistogram needs at least one bin")
	}
	if !(0 < lo && lo < hi) {
		panic("stats: NewLogHistogram needs 0 < lo < hi")
	}
	return &Histogram{
		lo:       lo,
		hi:       hi,
		logScale: true,
		invLogK:  float64(bins) / math.Log(hi/lo),
		counts:   make([]uint32, bins),
	}
}

// binIndex maps an in-range sample (lo <= x < hi) to its bin, clamping the
// floating-point edge cases into the valid range.
func (h *Histogram) binIndex(x float64) int {
	var i int
	if h.logScale {
		i = int(math.Log(x/h.lo) * h.invLogK)
	} else {
		i = int((x - h.lo) / h.width)
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if !math.IsNaN(x) {
		// Out-of-range samples still contribute — Sum is the total of
		// everything observed, as a Prometheus histogram's _sum is.
		h.sum += x
	}
	switch {
	case math.IsNaN(x):
		// NaNs land in overflow: they must not vanish, and they have no
		// ordering that would justify underflow instead.
		h.overflow++
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		// The top edge itself belongs to the last bin.
		if x == h.hi {
			h.counts[len(h.counts)-1]++
		} else {
			h.overflow++
		}
	default:
		h.counts[h.binIndex(x)]++
	}
}

// Lo returns the lower edge of the histogram range.
func (h *Histogram) Lo() float64 { return h.lo }

// Hi returns the upper (inclusive) edge of the histogram range.
func (h *Histogram) Hi() float64 { return h.hi }

// LogScale reports whether the bins are log-width (NewLogHistogram).
func (h *Histogram) LogScale() bool { return h.logScale }

// BinWidth returns the fixed width of each bin, or 0 for log-width bins
// (whose widths vary per bin — use Edges).
func (h *Histogram) BinWidth() float64 { return h.width }

// LowerEdge returns the inclusive lower edge of bin i.
func (h *Histogram) LowerEdge(i int) float64 {
	if i <= 0 {
		return h.lo
	}
	return h.UpperEdge(i - 1)
}

// UpperEdge returns the exclusive upper edge of bin i (the last bin's upper
// edge, Hi, is inclusive).
func (h *Histogram) UpperEdge(i int) float64 {
	if i >= len(h.counts)-1 {
		// Pin the top edge exactly: exp/log round-tripping may otherwise
		// land a hair off hi, and exposition formats compare edges.
		return h.hi
	}
	if h.logScale {
		return h.lo * math.Exp(float64(i+1)/h.invLogK)
	}
	return h.lo + float64(i+1)*h.width
}

// Edges returns the upper edge of every bin, in order. The final entry is
// exactly Hi.
func (h *Histogram) Edges() []float64 {
	out := make([]float64, len(h.counts))
	for i := range out {
		out[i] = h.UpperEdge(i)
	}
	return out
}

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.counts))
	for i, c := range h.counts {
		out[i] = int(c)
	}
	return out
}

// Count returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Count() int { return h.total }

// Sum returns the total of every sample recorded (NaNs excluded,
// out-of-range samples included).
func (h *Histogram) Sum() float64 { return h.sum }

// Underflow returns the number of samples below the histogram range.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the number of samples at or above the histogram range
// (excluding the inclusive top edge) plus any NaNs.
func (h *Histogram) Overflow() int { return h.overflow }

// Quantile estimates the q-quantile (0 <= q <= 1) from the binned counts by
// interpolating within the covering bin — linearly for fixed-width bins,
// geometrically for log-width bins. Ranks that fall in the underflow bucket
// report Lo (the histogram cannot resolve below its range); ranks in the
// overflow bucket report +Inf, making a saturated tail impossible to
// mistake for a real measurement. It returns NaN when the histogram is
// empty or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	// Rank of the target sample, 1-based; q=0 maps to the first sample.
	rank := int(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank <= h.underflow {
		return h.lo
	}
	cum := h.underflow
	for i, c32 := range h.counts {
		c := int(c32)
		if rank <= cum+c {
			loEdge, hiEdge := h.LowerEdge(i), h.UpperEdge(i)
			frac := (float64(rank-cum) - 0.5) / float64(c)
			if h.logScale {
				return loEdge * math.Pow(hiEdge/loEdge, frac)
			}
			return loEdge + frac*(hiEdge-loEdge)
		}
		cum += c
	}
	return math.Inf(1)
}

// Merge adds every count from o into h. The two histograms must have
// identical geometry (range, bin count, scale); Merge returns an error
// otherwise rather than silently mixing incompatible bins.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if h.lo != o.lo || h.hi != o.hi || len(h.counts) != len(o.counts) || h.logScale != o.logScale {
		return fmt.Errorf("stats: Merge geometry mismatch: [%g,%g)x%d log=%v vs [%g,%g)x%d log=%v",
			h.lo, h.hi, len(h.counts), h.logScale, o.lo, o.hi, len(o.counts), o.logScale)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.underflow += o.underflow
	h.overflow += o.overflow
	h.total += o.total
	h.sum += o.sum
	return nil
}

// BinOf returns the bin index x would fall into, or -1 when out of range.
func (h *Histogram) BinOf(x float64) int {
	if math.IsNaN(x) || x < h.lo || x > h.hi {
		return -1
	}
	if x == h.hi {
		return len(h.counts) - 1
	}
	return h.binIndex(x)
}

// Mode returns the centre of the most populated bin — arithmetic centre for
// fixed-width bins, geometric centre for log-width bins. Ties resolve to
// the lowest bin. It returns NaN when no in-range samples were added.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, uint32(0)
	for i, c := range h.counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return math.NaN()
	}
	if h.logScale {
		return math.Sqrt(h.LowerEdge(best) * h.UpperEdge(best))
	}
	return h.lo + (float64(best)+0.5)*h.width
}

// String renders a compact ASCII summary, one line per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.counts {
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d\n", h.LowerEdge(i), h.UpperEdge(i), c)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.overflow)
	}
	return b.String()
}
