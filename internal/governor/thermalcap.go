package governor

// ThermalCap wraps any governor with a thermal-throttling layer modelled
// on the kernel's intelligent power allocation behaviour on the
// Exynos 5422: when the die temperature crosses TripC the permissible
// operating-point ceiling steps down each epoch, and it recovers one step
// per epoch once the die has cooled below TripC − HysteresisC.
//
// PowerCapW extends the same ceiling mechanism to a power budget: when
// sensed epoch power exceeds the cap the ceiling steps down, and it
// recovers only once power has fallen to powerRecoverFrac of the cap
// (the hysteresis that keeps the ceiling from oscillating around the
// budget). Temperature and power share one ceiling — either signal can
// throttle, and recovery requires both to be clear — so a served
// session can be capped on power alone (TripC = +Inf), on temperature
// alone (PowerCapW = 0), or on both.
//
// The paper neglects the thermal constraint of its baseline "for
// equivalence of comparison", so none of the Table I-III experiments
// enable this wrapper; it exists because a deployable governor cannot
// ship without it, and because it lets users measure how much headroom
// each policy leaves the thermal envelope (sustained fmax under
// performance/ondemand trips it; the RTM's deadline-exact operation
// usually does not).
type ThermalCap struct {
	// Inner is the wrapped policy.
	Inner Governor
	// TripC is the throttling threshold.
	TripC float64
	// HysteresisC is how far below TripC the die must cool before the
	// ceiling recovers.
	HysteresisC float64
	// PowerCapW is the sensed-power budget in watts; 0 disables power
	// capping.
	PowerCapW float64

	ctx     Context
	ceiling int
	events  int
}

// powerRecoverFrac is the fraction of PowerCapW sensed power must fall
// below before the ceiling recovers a step.
const powerRecoverFrac = 0.95

// NewThermalCap wraps a governor with the Exynos-flavoured defaults
// (trip at 85 °C, recover below 80 °C).
func NewThermalCap(inner Governor) *ThermalCap {
	if inner == nil {
		panic("governor: ThermalCap needs an inner governor")
	}
	return &ThermalCap{Inner: inner, TripC: 85, HysteresisC: 5}
}

// Name implements Governor.
func (g *ThermalCap) Name() string { return g.Inner.Name() + "+thermal" }

// DecisionOverheadS forwards the inner governor's overhead model.
func (g *ThermalCap) DecisionOverheadS() float64 {
	if om, ok := g.Inner.(OverheadModeler); ok {
		return om.DecisionOverheadS()
	}
	return 0
}

// ThrottleEvents returns how many epochs the wrapper clamped the inner
// governor's choice.
func (g *ThermalCap) ThrottleEvents() int { return g.events }

// Ceiling returns the current operating-point ceiling.
func (g *ThermalCap) Ceiling() int { return g.ceiling }

// Reset implements Governor.
func (g *ThermalCap) Reset(ctx Context) {
	g.ctx = ctx
	g.ceiling = ctx.Table.MaxIdx()
	g.events = 0
	g.Inner.Reset(ctx)
}

// Decide implements Governor: update the ceiling from the measured die
// temperature and sensed power, then clamp the inner policy's choice to
// it.
func (g *ThermalCap) Decide(obs Observation) int {
	if obs.Epoch >= 0 {
		trip := obs.TempC > g.TripC
		clear := obs.TempC < g.TripC-g.HysteresisC
		if g.PowerCapW > 0 {
			if obs.PowerW > g.PowerCapW {
				trip = true
			}
			if obs.PowerW >= g.PowerCapW*powerRecoverFrac {
				clear = false
			}
		}
		switch {
		case trip && g.ceiling > 0:
			g.ceiling--
		case clear && g.ceiling < g.ctx.Table.MaxIdx():
			g.ceiling++
		}
	}
	idx := g.Inner.Decide(obs)
	if idx > g.ceiling {
		g.events++
		return g.ceiling
	}
	return idx
}
