package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"qgov/internal/governor"
	"qgov/internal/ring"
	"qgov/internal/wire"
)

// Fleet is a ring-aware direct client: it fetches the membership table
// from the router once, builds the same consistent-hash ring the router
// uses for placement, and sends each decide batch straight to the
// replica that owns the session — the router stays out of the data
// path entirely. Against N replicas the direct path scales with N
// instead of being capped by the router's single decode/re-encode
// loop.
//
// The router remains the control plane: session create/delete/info,
// metrics, listing, and membership all go through it, so a Fleet never
// disagrees with the router about where a session *should* live — only,
// transiently, about where it *does*. Three mechanisms bound that
// window:
//
//   - every decide reply carries the replica's installed membership
//     epoch; seeing one newer than the Fleet's table triggers a refetch,
//   - a replica that no longer holds a session forwards the decide to
//     the ring owner itself (one hop, never a loop), so a stale Fleet
//     still gets correct answers while it refreshes,
//   - any owner that cannot be reached directly falls back to the
//     router for that group, which also triggers a refetch.
//
// Methods are safe for concurrent use.
type Fleet struct {
	routerAddr string
	// conns is DialOptions.Conns for every replica connection the Fleet
	// opens (the router connection stays single — it is control-plane
	// plus fallback, not the steady-state data path).
	connsPer int

	// Timeout is handed to every underlying Client (see Client.Timeout).
	// Set before sharing the Fleet.
	Timeout time.Duration

	// refreshMu serialises table refetches so a burst of stale replies
	// causes one refresh, not one per batch.
	refreshMu sync.Mutex

	// mu guards the installed view: the router client, the table's ring,
	// and the per-replica connections.
	mu     sync.RWMutex
	router *Client
	epoch  uint32
	ring   *ring.Ring
	conns  map[string]*Client
}

// DialFleet connects to a router's binary listener, fetches its
// membership table, and dials every live replica. Against a flat
// server (no fleet) the table is empty and every call transparently
// uses the single connection — a Fleet degrades to a plain Client.
func DialFleet(routerAddr string) (*Fleet, error) {
	return DialFleetOpts(routerAddr, DialOptions{})
}

// DialFleetOpts is DialFleet with per-replica connection options:
// opt.Conns connections are opened to every replica (batches stripe
// across them; see DialOptions), and opt.Timeout seeds Fleet.Timeout.
func DialFleetOpts(routerAddr string, opt DialOptions) (*Fleet, error) {
	rc, err := Dial(routerAddr)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		routerAddr: routerAddr,
		connsPer:   opt.Conns,
		Timeout:    opt.Timeout,
		router:     rc,
		conns:      map[string]*Client{},
	}
	rc.Timeout = opt.Timeout
	if err := f.Refresh(); err != nil {
		f.Close()
		return nil, fmt.Errorf("client: fetching membership from %s: %w", routerAddr, err)
	}
	return f, nil
}

// Refresh refetches the membership table from the router and
// reconciles the per-replica connections: new members are dialed,
// removed members' connections closed, and connections with a sticky
// transport error are redialed. Members the router reports down are
// not dialed — their sessions route through the router, which degrades
// them the same way. Concurrent calls coalesce.
func (f *Fleet) Refresh() error {
	f.refreshMu.Lock()
	defer f.refreshMu.Unlock()

	msg, err := f.fetchMembers()
	if err != nil {
		return err
	}

	f.mu.RLock()
	cur := make(map[string]*Client, len(f.conns))
	for a, c := range f.conns {
		cur[a] = c
	}
	f.mu.RUnlock()

	down := make(map[string]bool, len(msg.Down))
	for _, a := range msg.Down {
		down[a] = true
	}

	next := make(map[string]*Client, len(msg.Members))
	for _, a := range msg.Members {
		if c := cur[a]; c != nil && c.Err() == nil {
			next[a] = c
			continue
		}
		if down[a] {
			continue // the router will answer for it (degraded), or has reconnected by the next refresh
		}
		c, err := DialOpts(a, DialOptions{Conns: f.connsPer, Timeout: f.timeout()})
		if err != nil {
			continue // same: fall back to the router for this member's keys
		}
		next[a] = c
	}
	var rg *ring.Ring
	if len(msg.Members) > 0 {
		rg = ring.New(msg.VNodes, msg.Members...)
	}

	f.mu.Lock()
	old := f.conns
	f.conns = next
	f.ring = rg
	f.epoch = msg.Epoch
	f.mu.Unlock()
	for a, c := range old {
		if next[a] != c {
			c.Close()
		}
	}
	return nil
}

// fetchMembers asks the router for its table, redialing the router
// connection once if it has gone stale.
func (f *Fleet) fetchMembers() (wire.Members, error) {
	f.mu.RLock()
	rc := f.router
	f.mu.RUnlock()
	st, body, err := rc.Members()
	if err != nil {
		nc, derr := Dial(f.routerAddr)
		if derr != nil {
			return wire.Members{}, fmt.Errorf("members fetch failed (%v) and redial failed: %w", err, derr)
		}
		nc.Timeout = f.timeout()
		f.mu.Lock()
		old := f.router
		f.router = nc
		f.mu.Unlock()
		old.Close()
		if st, body, err = nc.Members(); err != nil {
			return wire.Members{}, err
		}
	}
	if st != http.StatusOK {
		return wire.Members{}, fmt.Errorf("members fetch: status %d: %s", st, body)
	}
	var msg wire.Members
	if err := json.Unmarshal(body, &msg); err != nil {
		return wire.Members{}, fmt.Errorf("members fetch: bad body: %w", err)
	}
	return msg, nil
}

// Epoch returns the membership epoch of the installed table (0 against
// a flat server).
func (f *Fleet) Epoch() uint32 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.epoch
}

// Replicas returns the members of the installed table the Fleet
// currently holds a direct connection to, in no particular order.
func (f *Fleet) Replicas() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.conns))
	for a := range f.conns {
		out = append(out, a)
	}
	return out
}

// Decide serves one observation for one session through the ring owner.
func (f *Fleet) Decide(session string, obs governor.Observation) (Decision, error) {
	var out [1]Decision
	if err := f.DecideBatch([]string{session}, []governor.Observation{obs}, out[:]); err != nil {
		return Decision{}, err
	}
	return out[0], nil
}

// DecideBatch groups the batch by ring owner and sends each group
// directly to its replica, all groups in parallel; out[i] answers
// sessions[i]. Sessions whose owner has no live direct connection go
// through the router, and a direct send that fails at the transport
// level retries that group through the router before giving up — so a
// dead replica costs the batch its direct-path speed, not its answers.
// A returned error is transport-level (router and owner both
// unreachable); per-request failures land in out[i].Err.
func (f *Fleet) DecideBatch(sessions []string, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}

	f.mu.RLock()
	epoch := f.epoch
	rg := f.ring
	router := f.router
	type group struct {
		cl  *Client
		idx []int
	}
	var groups map[string]*group
	var viaRouter []int
	for i, id := range sessions {
		var cl *Client
		var owner string
		if rg != nil {
			if o, ok := rg.Owner(id); ok {
				owner, cl = o, f.conns[o]
			}
		}
		if cl == nil {
			viaRouter = append(viaRouter, i)
			continue
		}
		if groups == nil {
			groups = make(map[string]*group)
		}
		g := groups[owner]
		if g == nil {
			g = &group{cl: cl}
			groups[owner] = g
		}
		g.idx = append(g.idx, i)
	}
	f.mu.RUnlock()

	// Fast path: the whole batch lands on one replica.
	if len(viaRouter) == 0 && len(groups) == 1 {
		for _, g := range groups {
			err := g.cl.DecideBatch(sessions, obs, out)
			if err != nil {
				err = router.DecideBatch(sessions, obs, out)
				f.maybeRefresh(epoch, true)
				return err
			}
		}
		f.maybeRefresh(epoch, false)
		return nil
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fellBack := false
	send := func(cl *Client, idx []int, direct bool) {
		defer wg.Done()
		ss := make([]string, len(idx))
		oo := make([]governor.Observation, len(idx))
		res := make([]Decision, len(idx))
		for k, i := range idx {
			ss[k], oo[k] = sessions[i], obs[i]
		}
		err := cl.DecideBatch(ss, oo, res)
		if err != nil && direct {
			errMu.Lock()
			fellBack = true
			errMu.Unlock()
			err = router.DecideBatch(ss, oo, res)
		}
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		for k, i := range idx {
			out[i] = res[k]
		}
	}
	for _, g := range groups {
		wg.Add(1)
		go send(g.cl, g.idx, true)
	}
	if len(viaRouter) > 0 {
		wg.Add(1)
		go send(router, viaRouter, false)
	}
	wg.Wait()

	f.maybeRefresh(epoch, fellBack)
	return firstErr
}

// maybeRefresh refetches the table when the data plane has signalled
// it is stale: a reply carried a newer epoch than the installed table,
// or a direct send had to fall back to the router. Refresh errors are
// dropped — the batch already has its answers, and the next refresh
// trigger retries.
func (f *Fleet) maybeRefresh(sentEpoch uint32, fellBack bool) {
	stale := fellBack
	if !stale {
		f.mu.RLock()
		if f.router.LastMemberEpoch() > sentEpoch {
			stale = true
		} else {
			for _, cl := range f.conns {
				if cl.LastMemberEpoch() > sentEpoch {
					stale = true
					break
				}
			}
		}
		f.mu.RUnlock()
	}
	if stale {
		f.Refresh() //nolint:errcheck // best effort; the next stale signal retries
	}
}

// Control runs one control-plane operation through the router — the
// membership authority owns session placement, so creates and deletes
// must route through it.
func (f *Fleet) Control(op byte, session string, body []byte) (int, []byte, error) {
	f.mu.RLock()
	rc := f.router
	f.mu.RUnlock()
	return rc.Control(op, session, body)
}

// CreateSession creates a session via the router (which places it on
// the ring owner).
func (f *Fleet) CreateSession(body []byte) (int, []byte, error) {
	return f.Control(wire.OpCreate, "", body)
}

// CheckpointSession freezes the session's learnt state via the router.
func (f *Fleet) CheckpointSession(id string) (int, []byte, error) {
	return f.Control(wire.OpCheckpoint, id, nil)
}

// DeleteSession drops the session via the router.
func (f *Fleet) DeleteSession(id string) (int, []byte, error) {
	return f.Control(wire.OpDelete, id, nil)
}

// SessionInfo returns the session's info JSON via the router.
func (f *Fleet) SessionInfo(id string) (int, []byte, error) {
	return f.Control(wire.OpInfo, id, nil)
}

// Metrics returns the fleet-merged /v1/metrics JSON via the router.
func (f *Fleet) Metrics() (int, []byte, error) {
	return f.Control(wire.OpMetrics, "", nil)
}

// Close tears down the router connection and every replica connection.
func (f *Fleet) Close() error {
	f.mu.Lock()
	rc := f.router
	conns := f.conns
	f.conns = map[string]*Client{}
	f.mu.Unlock()
	var err error
	if rc != nil {
		err = rc.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}

// timeout returns the configured per-call timeout for new connections.
func (f *Fleet) timeout() time.Duration { return f.Timeout }
