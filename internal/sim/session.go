package sim

import (
	"fmt"

	"qgov/internal/governor"
	"qgov/internal/platform"
)

// Session is the epoch engine with the control loop inverted: instead of
// sim.Run owning the loop and calling the governor, the caller owns the
// loop and drives the engine one decision epoch at a time —
//
//	s := sim.NewSession(cfg)
//	for !s.Done() {
//	    s.Step(s.Decide())
//	}
//	res := s.Result()
//
// which is exactly what Run does. The inversion is what lets a governor be
// served from *outside* the simulator: an online controller (cmd/rtmd)
// reads Observe, chooses an operating point by whatever means it likes,
// and feeds the choice back through Step. On real hardware the RTM lives
// inside the OS and is fed one epoch's PMU/power/timing observation at a
// time; Session is that boundary made explicit.
//
// A Session is deterministic: the (Config, action sequence) pair fully
// determines every aggregate, which is what makes Snapshot/Restore exact
// (see Snapshot). A Session is not safe for concurrent use.
type Session struct {
	cfg      Config
	cluster  *platform.Cluster
	overhead float64

	res     *Result
	obs     governor.Observation
	prev    []platform.PMUSample
	cycles  []uint64
	utils   []float64
	sumPerf float64
	pos     int

	// pendingPredicted is the governor forecast captured by Decide for the
	// frame about to execute (recorded runs only).
	pendingPredicted float64
	// decidePending marks that the session's own governor was consulted
	// (and therefore advanced its learning state) since the last Step;
	// pendingChosen is the action it returned.
	decidePending bool
	pendingChosen int

	// Step provenance for Snapshot: the action applied each epoch and the
	// one the session's governor chose for it (-1 if not consulted) — a
	// driver may consult and then override (a cap, a floor), so the two
	// are logged separately.
	actions []int
	chosen  []int
}

// NewSession validates the configuration and prepares a session positioned
// before the first frame. Like Run it panics on configuration errors (nil
// governor, invalid trace, trace wider than the cluster) — those are
// harness bugs, not run-time conditions.
func NewSession(cfg Config) *Session {
	if cfg.Governor == nil {
		panic("sim: Config.Governor is nil")
	}
	if err := cfg.Trace.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	cluster := cfg.Cluster
	if cluster == nil {
		cluster = platform.DefaultA15Cluster(cfg.Seed)
	}
	if cfg.Trace.Threads() > cluster.NumCores() {
		panic(fmt.Sprintf("sim: trace %q needs %d threads, cluster has %d cores",
			cfg.Trace.Name, cfg.Trace.Threads(), cluster.NumCores()))
	}

	cfg.Governor.Reset(governor.Context{
		Table:    cluster.Table(),
		NumCores: cluster.NumCores(),
		PeriodS:  cfg.Trace.RefTimeS,
		Seed:     cfg.Seed,
	})

	s := &Session{
		cfg:     cfg,
		cluster: cluster,
		res: &Result{
			Workload:     cfg.Trace.Name,
			Governor:     cfg.Governor.Name(),
			Frames:       cfg.Trace.Len(),
			Explorations: -1,
			ConvergedAt:  -1,
		},
		obs:              governor.Observation{Epoch: -1},
		prev:             make([]platform.PMUSample, cluster.NumCores()),
		cycles:           make([]uint64, cluster.NumCores()),
		utils:            make([]float64, cluster.NumCores()),
		pendingPredicted: nan(),
		actions:          make([]int, 0, cfg.Trace.Len()),
		chosen:           make([]int, 0, cfg.Trace.Len()),
	}
	if om, ok := cfg.Governor.(governor.OverheadModeler); ok {
		s.overhead = om.DecisionOverheadS()
	}
	if cfg.Record {
		s.res.Records = getRecords(cfg.Trace.Len())
	}
	for c := range s.prev {
		s.prev[c] = cluster.PMU(c).Read()
	}
	return s
}

// Observe returns the observation of the last completed epoch — exactly
// what a governor consumes to decide the next one. Before the first Step
// it carries Epoch == -1 and zero values, the same first-call contract
// governors already tolerate. The slices alias per-epoch scratch buffers:
// consume them before the next Step, do not retain them.
func (s *Session) Observe() governor.Observation { return s.obs }

// Decide consults the session's configured governor for the next epoch's
// operating-point index, advancing the governor's learning state. Callers
// driving decisions from outside (an online controller) skip Decide and
// pass their own index to Step. At most one Decide per Step: a governor
// performs its Q-update inside Decide, so deciding twice for one epoch
// would double-train it — a driver bug, so it panics.
func (s *Session) Decide() int {
	if s.decidePending {
		panic("sim: Decide called twice without an intervening Step")
	}
	if s.cfg.Record && s.pos > 0 {
		if tr, ok := s.cfg.Governor.(tracer); ok {
			s.pendingPredicted = maxFloat64s(tr.PredictedCC())
		}
	}
	s.decidePending = true
	s.pendingChosen = s.cfg.Governor.Decide(s.obs)
	return s.pendingChosen
}

// Governor returns the session's configured governor — after a run, the
// trained learner (for freezing via governor.Checkpointer, inspection,
// learning transfer).
func (s *Session) Governor() governor.Governor { return s.cfg.Governor }

// Done reports whether the trace is exhausted.
func (s *Session) Done() bool { return s.pos >= s.cfg.Trace.Len() }

// Epoch returns the number of completed epochs (the index of the next
// frame to execute).
func (s *Session) Epoch() int { return s.pos }

// Step executes the next frame at the given operating point and folds the
// epoch into the running aggregates: DVFS transition, execution, energy
// and thermal integration, then the observation assembly from what the OS
// could measure (PMU deltas, the sensor, the clock). It panics past the
// end of the trace.
func (s *Session) Step(oppIdx int) {
	if s.Done() {
		panic("sim: Step past the end of the trace")
	}
	frame := s.cfg.Trace.Frames[s.pos]
	transitionCost := s.cluster.SetOPP(oppIdx)
	rep := s.cluster.Execute(frame.Cycles, s.overhead+transitionCost, s.cfg.Trace.RefTimeS)

	for c := range s.cycles {
		smp := s.cluster.PMU(c).Read()
		d := smp.Delta(s.prev[c])
		s.prev[c] = smp
		s.cycles[c] = d.Cycles
		s.utils[c] = d.Utilization()
	}
	s.obs = governor.Observation{
		Epoch:     s.pos,
		Cycles:    s.cycles,
		Util:      s.utils,
		ExecTimeS: rep.ExecTimeS,
		PeriodS:   s.cfg.Trace.RefTimeS,
		WallTimeS: rep.WallTimeS,
		PowerW:    rep.SensorPowerW,
		TempC:     rep.EndTempC,
		OPPIdx:    rep.OPPIdx,
	}

	missed := rep.SlackS < 0
	if missed {
		s.res.Misses++
	}
	s.res.EnergyJ += rep.EnergyJ
	s.res.SensorEnergyJ += rep.SensorPowerW * rep.WallTimeS
	s.res.SimTimeS += rep.WallTimeS
	s.sumPerf += rep.ExecTimeS / s.cfg.Trace.RefTimeS

	if s.cfg.Record {
		rec := FrameRecord{
			Epoch:        s.pos,
			OPPIdx:       rep.OPPIdx,
			FreqMHz:      rep.OPP.FreqMHz,
			ExecTimeS:    rep.ExecTimeS,
			SlackRatio:   rep.SlackS / s.cfg.Trace.RefTimeS,
			EnergyJ:      rep.EnergyJ,
			AvgPowerW:    rep.AvgPowerW,
			SensorPowerW: rep.SensorPowerW,
			TempC:        rep.EndTempC,
			Missed:       missed,
			ActualCC:     float64(frame.MaxCycles()),
			PredictedCC:  s.pendingPredicted,
			AvgSlackL:    nan(),
			Epsilon:      nan(),
		}
		if tr, ok := s.cfg.Governor.(tracer); ok {
			rec.AvgSlackL = tr.SlackL()
			rec.Epsilon = tr.Epsilon()
		}
		s.res.Records = append(s.res.Records, rec)
	}

	s.actions = append(s.actions, oppIdx)
	if s.decidePending {
		s.chosen = append(s.chosen, s.pendingChosen)
	} else {
		s.chosen = append(s.chosen, -1)
	}
	s.decidePending = false
	s.pendingPredicted = nan()
	s.pos++
}

// Result finalises and returns the aggregates over the epochs completed so
// far; after the last Step it is exactly what Run returns. The returned
// value is live — it is refreshed by further Steps and Result calls.
func (s *Session) Result() *Result {
	if s.pos > 0 {
		s.res.NormPerf = s.sumPerf / float64(s.pos)
		s.res.MissRate = float64(s.res.Misses) / float64(s.pos)
	}
	if s.res.SimTimeS > 0 {
		s.res.MeanPowerW = s.res.EnergyJ / s.res.SimTimeS
	}
	s.res.Transitions = s.cluster.Transitions()
	s.res.FinalTempC = s.cluster.TempC()
	if ls, ok := s.cfg.Governor.(governor.LearningStats); ok {
		s.res.Explorations = ls.Explorations()
		s.res.ConvergedAt = ls.ConvergedAtEpoch()
		s.res.ExplorationsToConv = s.res.Explorations
		if curve, ok := s.cfg.Governor.(governor.ExplorationCurve); ok && s.res.ConvergedAt >= 0 {
			s.res.ExplorationsToConv = curve.ExplorationsAt(s.res.ConvergedAt)
		}
	}
	return s.res
}

// Snapshot captures the session's step history — every action taken and
// whether it came from the session's own governor. Together with the
// Config it fully determines the session state: the engine is
// deterministic, so RestoreSession replays the log against a fresh session
// and lands byte-identically where this one stands. The snapshot is plain
// data (JSON-serialisable) and O(epochs) small — it stores no cluster or
// governor internals, which is what keeps it exact across refactors of
// either.
type Snapshot struct {
	Workload string `json:"workload"`
	Governor string `json:"governor"`
	Seed     int64  `json:"seed"`
	// Actions holds the operating-point index applied each completed
	// epoch.
	Actions []int `json:"actions"`
	// Chosen holds, for each epoch, the action the session's governor
	// returned from Decide (advancing its learning state), or -1 when the
	// epoch was driven externally without consulting it. It can differ
	// from Actions when a driver consults and then overrides.
	Chosen []int `json:"chosen"`
}

// Snapshot returns the current step history (see the Snapshot type).
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		Workload: s.cfg.Trace.Name,
		Governor: s.cfg.Governor.Name(),
		Seed:     s.cfg.Seed,
		Actions:  append([]int(nil), s.actions...),
		Chosen:   append([]int(nil), s.chosen...),
	}
}

// RestoreSession rebuilds a session from a snapshot by replaying its step
// history against a fresh session of the given Config: epochs that
// consulted the governor re-run Decide (it is deterministic, so its
// learning state replays exactly — and its choice must reproduce the
// logged one, which catches a mismatched Config), then the logged applied
// action is re-stepped, so consult-and-override histories restore too.
// The Config must describe the same run the snapshot was taken from —
// same workload, governor construction and seed — or the restore is
// refused.
func RestoreSession(cfg Config, snap Snapshot) (*Session, error) {
	if len(snap.Actions) != len(snap.Chosen) {
		return nil, fmt.Errorf("sim: snapshot is inconsistent: %d actions, %d chosen entries",
			len(snap.Actions), len(snap.Chosen))
	}
	s := NewSession(cfg)
	if snap.Workload != s.cfg.Trace.Name || snap.Governor != s.cfg.Governor.Name() || snap.Seed != s.cfg.Seed {
		return nil, fmt.Errorf("sim: snapshot of %s/%s@%d does not match config %s/%s@%d",
			snap.Governor, snap.Workload, snap.Seed,
			s.cfg.Governor.Name(), s.cfg.Trace.Name, s.cfg.Seed)
	}
	if len(snap.Actions) > s.cfg.Trace.Len() {
		return nil, fmt.Errorf("sim: snapshot has %d epochs, trace %q has %d frames",
			len(snap.Actions), s.cfg.Trace.Name, s.cfg.Trace.Len())
	}
	for i, a := range snap.Actions {
		if want := snap.Chosen[i]; want >= 0 {
			if got := s.Decide(); got != want {
				return nil, fmt.Errorf("sim: snapshot diverged at epoch %d: governor chose %d, snapshot logged %d (different Config?)",
					i, got, want)
			}
		}
		s.Step(a)
	}
	return s, nil
}
