package scenario_test

import (
	"bytes"
	"strings"
	"testing"

	"qgov/internal/scenario"
	"qgov/internal/sim"
)

// Every learning governor must be trainable, freezable and warm-startable
// through the scenario registry — the generalisation of the RTM-only
// Q-table transfer. The round-trip assertion is strong: freezing a
// freshly warm-started governor must reproduce the checkpoint byte for
// byte (tables, visit counts, state-space range and exploration-schedule
// position all survive the trip).
func TestEveryLearnerFreezesAndWarmStarts(t *testing.T) {
	for _, gov := range []string{"rtm", "rtm-percore", "updrl", "mldtm"} {
		t.Run(gov, func(t *testing.T) {
			sc, err := scenario.Get(gov + "/mpeg4-30fps/a15")
			if err != nil {
				t.Fatal(err)
			}

			// Freezing before any run must fail: there is nothing to save.
			cfg0, err := sc.Config(5, 500)
			if err != nil {
				t.Fatal(err)
			}
			if err := scenario.Freeze(cfg0.Governor, new(bytes.Buffer)); err == nil {
				t.Fatal("freezing an un-run governor was accepted")
			}

			// Train, then freeze.
			trained, err := sc.Session(5, 500)
			if err != nil {
				t.Fatal(err)
			}
			for !trained.Done() {
				trained.Step(trained.Decide())
			}
			cold := trained.Result()
			var frozen bytes.Buffer
			if err := scenario.Freeze(trained.Governor(), &frozen); err != nil {
				t.Fatal(err)
			}

			// Warm-start a fresh run of the same scenario and re-freeze:
			// byte-identical state proves nothing was lost or mutated.
			cfgW, err := sc.ConfigWarm(5, 500, bytes.NewReader(frozen.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			warm := sim.NewSession(cfgW)
			var refrozen bytes.Buffer
			if err := scenario.Freeze(cfgW.Governor, &refrozen); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frozen.Bytes(), refrozen.Bytes()) {
				t.Fatalf("freeze → warm-start → freeze is not the identity:\n%s\nvs\n%s",
					frozen.String(), refrozen.String())
			}

			// A warm-started learner resumes exploitation: it must spend
			// fewer exploratory decisions than the cold run it came from.
			for !warm.Done() {
				warm.Step(warm.Decide())
			}
			if w := warm.Result(); w.Explorations >= cold.Explorations {
				t.Errorf("warm run explored %d times, cold run %d — warm start did not transfer",
					w.Explorations, cold.Explorations)
			}
		})
	}
}

func TestWarmStartRejectsNonLearner(t *testing.T) {
	sc, err := scenario.Get("ondemand/mpeg4-30fps/a15")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ConfigWarm(1, 100, strings.NewReader("{}")); err == nil {
		t.Fatal("warm-starting ondemand was accepted")
	}
	cfg, err := sc.Config(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.Freeze(cfg.Governor, new(bytes.Buffer)); err == nil {
		t.Fatal("freezing ondemand was accepted")
	}
}

// A checkpoint from one learner family must not load into another, and
// corrupted state must be rejected at LoadState — before it can reach a
// value table.
func TestWarmStartRejectsForeignAndCorruptState(t *testing.T) {
	rtm, err := scenario.Get("rtm/mpeg4-30fps/a15")
	if err != nil {
		t.Fatal(err)
	}
	mldtm, err := scenario.Get("mldtm/mpeg4-30fps/a15")
	if err != nil {
		t.Fatal(err)
	}

	s, err := rtm.Session(3, 300)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		s.Step(s.Decide())
	}
	var rtmState bytes.Buffer
	if err := scenario.Freeze(s.Governor(), &rtmState); err != nil {
		t.Fatal(err)
	}

	if _, err := mldtm.ConfigWarm(3, 300, bytes.NewReader(rtmState.Bytes())); err == nil {
		t.Error("mldtm accepted an rtm checkpoint")
	}
	if _, err := rtm.ConfigWarm(3, 300, strings.NewReader("not json")); err == nil {
		t.Error("rtm accepted garbage state")
	}
	// Truncating a table breaks the states×actions invariant.
	broken := strings.Replace(rtmState.String(), `"q":[`, `"q":[0,`, 1)
	if broken == rtmState.String() {
		t.Fatal("corruption substitution failed")
	}
	if _, err := rtm.ConfigWarm(3, 300, strings.NewReader(broken)); err == nil {
		t.Error("rtm accepted a corrupted checkpoint")
	}
}
