package serve_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
	"qgov/internal/wire"
)

// scriptedReplica is a minimal wire-protocol replica for relay-behavior
// tests: control frames (the router's membership push) are answered 200
// immediately, and every observe frame is handed to the script on the
// reader goroutine — which replies, holds, or kills the connection,
// modelling a slow or dying fleet member without real governor state.
type scriptedReplica struct {
	t    *testing.T
	addr string

	mu    sync.Mutex
	conns []net.Conn
}

// newScriptedReplica starts the listener; script runs once per observe
// frame. The wire.Observe handed to it aliases the reader's buffer —
// scripts that defer their reply must copy what they keep (the tests
// keep only the id, which is a value).
func newScriptedReplica(t *testing.T, script func(r *scriptedReplica, conn net.Conn, m wire.Observe)) *scriptedReplica {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	r := &scriptedReplica{t: t, addr: lis.Addr().String()}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			r.mu.Lock()
			r.conns = append(r.conns, conn)
			r.mu.Unlock()
			go r.serveConn(conn, script)
		}
	}()
	return r
}

func (r *scriptedReplica) serveConn(conn net.Conn, script func(r *scriptedReplica, conn net.Conn, m wire.Observe)) {
	defer conn.Close()
	rd := wire.NewReader(conn)
	var obs wire.Observe
	var ctrl wire.Control
	for {
		typ, payload, err := rd.Next()
		if err != nil {
			return
		}
		switch typ {
		case wire.MsgObserve:
			if err := obs.Decode(payload); err != nil {
				return
			}
			script(r, conn, obs)
		case wire.MsgControl:
			if err := ctrl.Decode(payload); err != nil {
				return
			}
			buf, err := wire.AppendControlReply(nil, ctrl.ID, 200, nil)
			if err != nil {
				return
			}
			r.mu.Lock()
			conn.Write(buf)
			r.mu.Unlock()
		}
	}
}

// reply writes one decide frame; safe from any goroutine.
func (r *scriptedReplica) reply(conn net.Conn, id uint32, oppIdx, freqMHz int32, errMsg string) {
	buf, err := wire.AppendDecide(nil, id, 0, oppIdx, freqMHz, errMsg)
	if err != nil {
		r.t.Error(err)
		return
	}
	r.mu.Lock()
	conn.Write(buf)
	r.mu.Unlock()
}

// closeConns drops every accepted connection — the replica dying
// mid-pipeline.
func (r *scriptedReplica) closeConns() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
}

// heldFrame is one observe a stalling replica has received but not yet
// answered.
type heldFrame struct {
	conn net.Conn
	id   uint32
}

// startScriptedRouter builds a router over the given scripted replicas
// (probing off — there is no real health endpoint behind them), serves
// its binary transport, and returns a connected client plus one session
// id owned by each replica, in replica order.
func startScriptedRouter(t *testing.T, reps []*scriptedReplica) (*serve.Router, *client.Client, []string) {
	t.Helper()
	addrs := make([]string, len(reps))
	for i, r := range reps {
		addrs[i] = r.addr
	}
	rt, err := serve.NewRouter(addrs, serve.RouterOptions{ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rtTCP := serve.NewRouterTCP(rt, lis)
	go func() { _ = rtTCP.Serve() }()
	t.Cleanup(func() { rtTCP.Close() })

	cl, err := client.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.Timeout = 10 * time.Second

	// One session id per replica: the ring places ids deterministically,
	// so probe candidate names until every replica owns one.
	ids := make([]string, len(addrs))
	found := 0
	for i := 0; found < len(addrs) && i < 10000; i++ {
		id := "lane-" + string(rune('a'+i%26)) + "-" + itoa(i)
		owner, ok := rt.Owner(id)
		if !ok {
			t.Fatal("router has no replicas")
		}
		for k, a := range addrs {
			if a == owner && ids[k] == "" {
				ids[k] = id
				found++
			}
		}
	}
	if found < len(addrs) {
		t.Fatalf("could not find a session id for every replica (got %d of %d)", found, len(addrs))
	}
	return rt, cl, ids
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestRouterPipelineStalledLane: with the pipelined relay, one replica
// sitting on a decide must not stop the router from relaying later
// batches on the same client connection to other replicas. The slow
// replica holds its reply; the test then sends a decide owned by the
// fast replica and requires the fast replica to RECEIVE it while the
// slow one is still stalled — under the legacy blocking relay the
// connection worker would still be inside the first round trip and the
// second frame would never leave the router. Replies still come back in
// arrival order once the slow lane releases (per-connection ordering is
// part of the wire contract).
func TestRouterPipelineStalledLane(t *testing.T) {
	held := make(chan heldFrame, 16)
	fastGot := make(chan uint32, 16)
	var slow, fast *scriptedReplica
	slow = newScriptedReplica(t, func(r *scriptedReplica, conn net.Conn, m wire.Observe) {
		held <- heldFrame{conn: conn, id: m.ID}
	})
	fast = newScriptedReplica(t, func(r *scriptedReplica, conn net.Conn, m wire.Observe) {
		r.reply(conn, m.ID, 1, 1000, "")
		fastGot <- m.ID
	})

	_, cl, ids := startScriptedRouter(t, []*scriptedReplica{slow, fast})
	slowID, fastID := ids[0], ids[1]

	type res struct {
		d   client.Decision
		err error
	}
	slowDone := make(chan res, 1)
	go func() {
		d, err := cl.Decide(slowID, governor.Observation{})
		slowDone <- res{d, err}
	}()

	// The slow replica now holds the first batch open.
	var h heldFrame
	select {
	case h = <-held:
	case <-time.After(5 * time.Second):
		t.Fatal("slow replica never received the relayed decide")
	}

	// Send a decide for the fast replica on the same client connection.
	// Its reply is head-of-line blocked behind the stalled batch, so
	// drive it from a goroutine and assert on the fast replica's receipt.
	fastDone := make(chan res, 1)
	go func() {
		d, err := cl.Decide(fastID, governor.Observation{})
		fastDone <- res{d, err}
	}()
	select {
	case <-fastGot:
		// The router relayed past the stalled lane: pipelining works.
	case <-time.After(5 * time.Second):
		t.Fatal("fast replica starved behind a stalled lane; relay is not pipelined")
	}
	select {
	case r := <-slowDone:
		t.Fatalf("slow decide completed while its replica held the reply: %+v %v", r.d, r.err)
	default:
	}

	// Release the slow lane; both decides must now complete with their
	// own replicas' answers.
	slow.reply(h.conn, h.id, 7, 700, "")
	r := <-slowDone
	if r.err != nil || r.d.Err != "" || r.d.OPPIdx != 7 {
		t.Fatalf("slow decide = %+v err %v, want OPP 7", r.d, r.err)
	}
	r = <-fastDone
	if r.err != nil || r.d.Err != "" || r.d.OPPIdx != 1 {
		t.Fatalf("fast decide = %+v err %v, want OPP 1", r.d, r.err)
	}
}

// TestRouterConnFailureFailsOnlyItsBatches: a replica dying with a
// relayed batch in flight must fail exactly that batch's entries — with
// the replica named in the error — while pipelined batches on other
// replicas, and every later decide, keep working. The client-facing
// connection stays healthy throughout.
func TestRouterConnFailureFailsOnlyItsBatches(t *testing.T) {
	held := make(chan heldFrame, 16)
	var dying, healthy *scriptedReplica
	dying = newScriptedReplica(t, func(r *scriptedReplica, conn net.Conn, m wire.Observe) {
		held <- heldFrame{conn: conn, id: m.ID}
	})
	healthy = newScriptedReplica(t, func(r *scriptedReplica, conn net.Conn, m wire.Observe) {
		r.reply(conn, m.ID, 1, 1000, "")
	})

	_, cl, ids := startScriptedRouter(t, []*scriptedReplica{dying, healthy})
	dyingID, healthyID := ids[0], ids[1]

	type res struct {
		d   client.Decision
		err error
	}
	dyingDone := make(chan res, 1)
	go func() {
		d, err := cl.Decide(dyingID, governor.Observation{})
		dyingDone <- res{d, err}
	}()
	select {
	case <-held:
	case <-time.After(5 * time.Second):
		t.Fatal("dying replica never received the relayed decide")
	}
	healthyDone := make(chan res, 1)
	go func() {
		d, err := cl.Decide(healthyID, governor.Observation{})
		healthyDone <- res{d, err}
	}()

	// Kill the replica with its batch still pending.
	dying.closeConns()

	r := <-dyingDone
	if r.err != nil {
		t.Fatalf("dying-lane decide returned a transport error (%v); the failure must stay per-entry", r.err)
	}
	if r.d.Err == "" || !strings.Contains(r.d.Err, "replica") {
		t.Fatalf("dying-lane decide = %+v, want a replica-named per-entry error", r.d)
	}
	r = <-healthyDone
	if r.err != nil || r.d.Err != "" || r.d.OPPIdx != 1 {
		t.Fatalf("healthy-lane decide = %+v err %v, want OPP 1 (other lanes must be untouched)", r.d, r.err)
	}

	// The client connection survived; later decides on the healthy
	// replica still answer.
	d, err := cl.Decide(healthyID, governor.Observation{})
	if err != nil || d.Err != "" || d.OPPIdx != 1 {
		t.Fatalf("post-failure decide = %+v err %v, want OPP 1", d, err)
	}
	if cl.Err() != nil {
		t.Fatalf("client poisoned by a replica-side failure: %v", cl.Err())
	}
}
