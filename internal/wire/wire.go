// Package wire is the binary frame codec behind the rtmd streaming
// transport. The HTTP+JSON endpoint costs ~7 µs of encode/decode per
// decision — two orders of magnitude more than the governor's own work —
// so the serving fast path speaks length-prefixed binary frames over
// persistent TCP connections instead.
//
// Every frame is
//
//	offset  size  field
//	0       2     magic 0x5147 ("QG"), big-endian
//	2       1     protocol version (1)
//	3       1     message type
//	4       4     payload length, big-endian
//	8       n     payload
//
// Two message types carry the decision loop. MsgObserve (client →
// server) reports one completed decision epoch for one session — the
// same observation POST /v1/decide carries as JSON — and asks for the
// next operating point. MsgDecide (server → client) answers with the
// OPP index to apply; stepping the controlled cluster under that OPP is
// the client's side of the loop, and the next MsgObserve implicitly
// acknowledges it. Frames carry a request id chosen by the client so
// many callers can multiplex one connection.
//
// Two more types carry the control plane. MsgControl asks the server to
// run one session-lifecycle operation (create, checkpoint, delete,
// info, metrics, list, health, members — the Op* constants, mirroring
// the HTTP API one endpoint for one op, with the same JSON bodies,
// except OpMembers whose body is the Members table); MsgControlReply
// answers it with an HTTP status code and the JSON response. Control
// frames are what let a routing tier drive a replica fleet entirely
// over binary connections; they are rare (session lifetime, not
// decision rate), so their JSON bodies cost nothing the hot path sees.
//
// All integers are big-endian; floats travel as IEEE-754 bits, so every
// observation field round-trips bit-exactly — the serve layer's
// byte-identical-decisions contract holds over this transport exactly as
// it does over JSON (which round-trips float64 via shortest-form
// decimals).
//
// The codec is allocation-free in steady state: Append* functions append
// to a caller scratch buffer, Decode methods reuse the capacity of the
// slices already hanging off the message struct, and Reader reuses one
// payload buffer across frames. Decode validates every length before
// reading or allocating, so truncated, oversized, and bit-flipped frames
// return errors — never panics or unbounded allocation (the fuzz targets
// hold the codec to that).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"qgov/internal/governor"
)

const (
	// Magic opens every frame: "QG" on the wire.
	Magic uint16 = 0x5147
	// Version is the protocol version this package speaks.
	Version byte = 1
	// HeaderSize is the fixed frame-header length.
	HeaderSize = 8
	// MaxPayload bounds one frame's payload; a length prefix beyond it
	// is rejected before any allocation.
	MaxPayload = 1 << 20
	// MaxSession bounds the session-id length (mirrors the serve layer's
	// id pattern, which caps ids at 128 filename-safe bytes).
	MaxSession = 128
	// MaxVector bounds the per-core Cycles/Util vectors; no platform in
	// the scenario registry has more cores than this.
	MaxVector = 4096
)

// Message types.
const (
	// MsgObserve carries one session's epoch observation to the server.
	MsgObserve byte = 0x01
	// MsgDecide carries one operating-point decision (or a per-request
	// error) back to the client.
	MsgDecide byte = 0x02
	// MsgControl carries one control-plane operation (session create,
	// checkpoint, delete, ...) to the server. Control frames complete the
	// protocol: a routed fleet runs entirely over binary connections,
	// with no HTTP side channel between router and replica.
	MsgControl byte = 0x03
	// MsgControlReply answers a MsgControl with a status code and a JSON
	// body.
	MsgControlReply byte = 0x04
)

// Control operations. The ops mirror the HTTP control plane one for
// one; bodies and reply bodies are the same JSON documents the HTTP
// endpoints exchange (control traffic is rare — session lifetime, not
// decision rate — so JSON costs nothing that matters and keeps one
// schema across both planes).
const (
	// OpCreate creates a session; the body is the JSON create request,
	// the reply body the session info.
	OpCreate byte = 0x01
	// OpCheckpoint freezes the session's learnt state now; the reply
	// body carries the frozen state.
	OpCheckpoint byte = 0x02
	// OpDelete drops the session and its checkpoint.
	OpDelete byte = 0x03
	// OpInfo returns the session's info JSON.
	OpInfo byte = 0x04
	// OpMetrics returns the server's metrics JSON (the /v1/metrics body);
	// the session field is ignored.
	OpMetrics byte = 0x05
	// OpList returns the JSON array of all session infos; the session
	// field is ignored.
	OpList byte = 0x06
	// OpHealth returns the /healthz body (status + counters) — O(1) on
	// the replica, so a router can aggregate fleet liveness without
	// enumerating sessions; the session field is ignored.
	OpHealth byte = 0x07
	// OpMembers carries the fleet membership table. With an empty body it
	// is a fetch: the reply body is the Members document describing the
	// current ring (routers answer with the fleet table; flat replicas
	// answer with whatever table was last installed, epoch 0 when none).
	// With a non-empty body it is a push: the router installs the table on
	// a replica so the replica can recognise — and forward — decides for
	// sessions the ring places elsewhere. The session field is ignored.
	OpMembers byte = 0x08
	// OpTrace returns recent decide-path spans from the server's trace
	// ring. The body is the JSON filter (/v1/trace's query parameters as
	// a document: min_us, session, trace, limit), the reply body the JSON
	// span array — what lets a router stitch fleet-wide traces without an
	// HTTP side channel to its replicas. The session field is ignored.
	OpTrace byte = 0x09
)

// Observe flags.
const (
	// FlagForwarded marks an observe that one replica relayed to another
	// on behalf of a stale direct client. A receiver never re-forwards a
	// flagged observe, so transient membership disagreement between two
	// replicas is bounded to one extra hop instead of a forwarding loop.
	FlagForwarded byte = 0x01
	// FlagTraced marks an observe carrying a trace id: 8 extra big-endian
	// bytes appended after the util vector. The id travels at the payload
	// tail so every fixed offset (ObserveMeta, SetObserveID) stays valid,
	// untraced frames are byte-identical to protocol version 1 without the
	// flag, and a relay can tag a frame in flight by setting the bit and
	// appending the id — no re-encode, no offset shuffle.
	FlagTraced byte = 0x02
)

// Members is the JSON body of OpMembers frames — the one membership
// schema both sides of the protocol share. The router stamps Epoch on
// every ring change (monotonically increasing, starting at 1); replicas
// echo their installed epoch in every MsgDecide so a direct client can
// detect a stale table from the data plane alone and refetch.
type Members struct {
	// Epoch is the membership generation; 0 means "no fleet table".
	Epoch uint32 `json:"epoch"`
	// VNodes is the ring's virtual-node count; clients must build their
	// ring with the same value to compute the same placement.
	VNodes int `json:"vnodes"`
	// Members lists the replica addresses on the ring, as dialed by the
	// router.
	Members []string `json:"members"`
	// Self, set only on pushes, is the receiving replica's own address as
	// the fleet knows it — what the replica compares ring owners against.
	Self string `json:"self,omitempty"`
	// Down, set on fetch replies, lists members the router's prober
	// currently reports unreachable; direct clients route their keys via
	// the router instead of dialing them.
	Down []string `json:"down,omitempty"`
}

// Codec errors. Reader and Decode wrap or return these; io errors from
// the underlying stream pass through unwrapped.
var (
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
	ErrFrameTooLarge = errors.New("wire: frame payload exceeds MaxPayload")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
	ErrTooLong       = errors.New("wire: field exceeds protocol bound")
)

// Observe is the decoded MsgObserve payload: one request id, the session
// it addresses, and the observation of the epoch that just completed.
// Decode reuses Session and Obs.Cycles/Obs.Util capacity, so a steady
// stream of frames decodes without allocating.
type Observe struct {
	ID uint32
	// Flags carries per-request transport flags (FlagForwarded,
	// FlagTraced).
	Flags   byte
	Session []byte
	Obs     governor.Observation
	// TraceID is the propagated trace id when Flags carries FlagTraced,
	// 0 otherwise. A server decides the request identically either way;
	// the id only routes the request's spans to one stitched trace.
	TraceID uint64
}

// Decide is the decoded MsgDecide payload. OPPIdx is -1 and Err non-empty
// when the request failed (unknown session, rejected observation);
// requests fail independently, exactly like entries of the JSON batch.
// MemberEpoch echoes the answering server's installed membership epoch
// (0 on a flat server with no fleet table); a direct client comparing it
// against its own table's epoch learns from the data plane alone that
// the ring changed and a refetch is due.
type Decide struct {
	ID          uint32
	MemberEpoch uint32
	OPPIdx      int32
	FreqMHz     int32
	Err         []byte
}

// Control is the decoded MsgControl payload: one control-plane operation
// addressed to a session (Session may be empty for server-scoped ops),
// with a JSON body whose schema is the op's HTTP twin. Decode reuses
// Session and Body capacity.
type Control struct {
	ID      uint32
	Op      byte
	Session []byte
	Body    []byte
}

// ControlReply is the decoded MsgControlReply payload. Status carries
// the operation's HTTP status code — the two control planes share one
// status vocabulary — and Body the JSON response (an {"error": ...}
// document when Status is not 2xx).
type ControlReply struct {
	ID     uint32
	Status uint16
	Body   []byte
}

// appendHeader opens a frame and returns dst plus the offset of the
// length field, which the caller patches once the payload is appended.
func appendHeader(dst []byte, typ byte) ([]byte, int) {
	dst = append(dst, byte(Magic>>8), byte(Magic&0xff), Version, typ, 0, 0, 0, 0)
	return dst, len(dst) - 4
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// AppendObserve appends one complete MsgObserve frame to dst and returns
// the extended slice. It fails only on protocol-bound violations (session
// or vector too long), leaving dst's original contents intact.
func AppendObserve(dst []byte, id uint32, session string, obs *governor.Observation) ([]byte, error) {
	return AppendObserveFlags(dst, id, 0, session, obs)
}

// AppendObserveBytes is AppendObserve for callers that already hold the
// session id as bytes (a router regrouping decoded frames, a replica
// forwarding a misrouted decide) plus explicit flags — it skips the
// []byte→string conversion the hot path would otherwise pay per request.
func AppendObserveBytes(dst []byte, id uint32, flags byte, session []byte, obs *governor.Observation) ([]byte, error) {
	return AppendObserveFlags(dst, id, flags, session, obs)
}

// AppendObserveFlags is the generic core of AppendObserve and
// AppendObserveBytes: one encoder over both session representations, so
// hot paths holding []byte session ids never convert to string.
func AppendObserveFlags[S string | []byte](dst []byte, id uint32, flags byte, session S, obs *governor.Observation) ([]byte, error) {
	return AppendObserveTraced(dst, id, flags, 0, session, obs)
}

// AppendObserveTraced is AppendObserveFlags plus a trace id: when trace
// is nonzero the frame carries FlagTraced and the id as its trailing 8
// bytes, so the receiving server's decide spans stitch to the caller's.
// A zero trace encodes a plain untraced frame (FlagTraced stripped from
// flags if present — a traced flag without an id would desync decode).
func AppendObserveTraced[S string | []byte](dst []byte, id uint32, flags byte, trace uint64, session S, obs *governor.Observation) ([]byte, error) {
	if trace != 0 {
		flags |= FlagTraced
	} else {
		flags &^= FlagTraced
	}
	if len(session) > MaxSession {
		return dst, fmt.Errorf("%w: session id of %d bytes (max %d)", ErrTooLong, len(session), MaxSession)
	}
	if len(obs.Cycles) > MaxVector || len(obs.Util) > MaxVector {
		return dst, fmt.Errorf("%w: %d cycles / %d utils (max %d)", ErrTooLong, len(obs.Cycles), len(obs.Util), MaxVector)
	}
	orig := len(dst)
	out, lenAt := appendHeader(dst, MsgObserve)
	start := len(out)
	out = appendU32(out, id)
	out = append(out, flags)
	out = appendU64(out, uint64(int64(obs.Epoch)))
	out = appendF64(out, obs.ExecTimeS)
	out = appendF64(out, obs.PeriodS)
	out = appendF64(out, obs.WallTimeS)
	out = appendF64(out, obs.PowerW)
	out = appendF64(out, obs.TempC)
	out = appendU32(out, uint32(int32(obs.OPPIdx)))
	out = append(out, byte(len(session)))
	out = append(out, session...)
	out = appendU16(out, uint16(len(obs.Cycles)))
	for _, c := range obs.Cycles {
		out = appendU64(out, c)
	}
	out = appendU16(out, uint16(len(obs.Util)))
	for _, u := range obs.Util {
		out = appendF64(out, u)
	}
	if trace != 0 {
		out = appendU64(out, trace)
	}
	if len(out)-start > MaxPayload {
		return dst[:orig], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[lenAt:], uint32(len(out)-start))
	return out, nil
}

// AppendDecide appends one complete MsgDecide frame to dst. memberEpoch
// is the answering server's installed membership epoch (0 when it has no
// fleet table).
func AppendDecide(dst []byte, id, memberEpoch uint32, oppIdx, freqMHz int32, errMsg string) ([]byte, error) {
	if len(errMsg) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: error message of %d bytes", ErrTooLong, len(errMsg))
	}
	out, lenAt := appendHeader(dst, MsgDecide)
	start := len(out)
	out = appendU32(out, id)
	out = appendU32(out, memberEpoch)
	out = appendU32(out, uint32(oppIdx))
	out = appendU32(out, uint32(freqMHz))
	out = appendU16(out, uint16(len(errMsg)))
	out = append(out, errMsg...)
	// 18 fixed bytes + a ≤65535-byte error message cannot reach MaxPayload.
	binary.BigEndian.PutUint32(out[lenAt:], uint32(len(out)-start))
	return out, nil
}

// AppendControl appends one complete MsgControl frame to dst. The body
// is bounded by the frame payload limit; control bodies are JSON
// documents (create requests, checkpoint states) well under it.
func AppendControl(dst []byte, id uint32, op byte, session string, body []byte) ([]byte, error) {
	if len(session) > MaxSession {
		return dst, fmt.Errorf("%w: session id of %d bytes (max %d)", ErrTooLong, len(session), MaxSession)
	}
	if HeaderSize+10+len(session)+len(body) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	out, lenAt := appendHeader(dst, MsgControl)
	start := len(out)
	out = appendU32(out, id)
	out = append(out, op)
	out = append(out, byte(len(session)))
	out = append(out, session...)
	out = appendU32(out, uint32(len(body)))
	out = append(out, body...)
	binary.BigEndian.PutUint32(out[lenAt:], uint32(len(out)-start))
	return out, nil
}

// AppendControlReply appends one complete MsgControlReply frame to dst.
func AppendControlReply(dst []byte, id uint32, status uint16, body []byte) ([]byte, error) {
	if HeaderSize+10+len(body) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	out, lenAt := appendHeader(dst, MsgControlReply)
	start := len(out)
	out = appendU32(out, id)
	out = appendU16(out, status)
	out = appendU32(out, uint32(len(body)))
	out = append(out, body...)
	binary.BigEndian.PutUint32(out[lenAt:], uint32(len(out)-start))
	return out, nil
}

// Fixed offsets inside a MsgObserve payload. The layout is
// AppendObserveFlags's append order: id u32, flags u8, epoch u64, five
// f64 scalars, OPP u32, session length u8, session bytes, then the
// variable-length cycle/util vectors. Everything before the session is
// fixed-width, which is what lets a relay patch the request id and read
// the routing key without decoding the frame.
const (
	observeFlagsOff   = 4
	observeSessLenOff = 57
	observeSessOff    = 58
)

// ObserveMeta reads the routing metadata — request id, flags, session
// id — off an encoded MsgObserve payload without decoding the
// observation. The returned session aliases payload. A router relaying
// frames to ring owners uses this instead of Observe.Decode: picking an
// owner needs only the session bytes, and the observation travels on
// untouched.
func ObserveMeta(payload []byte) (id uint32, flags byte, session []byte, err error) {
	if len(payload) < observeSessOff {
		return 0, 0, nil, ErrTruncated
	}
	n := int(payload[observeSessLenOff])
	if n > MaxSession {
		return 0, 0, nil, fmt.Errorf("%w: session id of %d bytes", ErrTooLong, n)
	}
	if len(payload) < observeSessOff+n {
		return 0, 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint32(payload), payload[observeFlagsOff], payload[observeSessOff : observeSessOff+n], nil
}

// SetObserveID rewrites the request id of an encoded MsgObserve payload
// in place — the only byte-level mutation a relay makes before
// forwarding a frame under its own id space.
func SetObserveID(payload []byte, id uint32) error {
	if len(payload) < 4 {
		return ErrTruncated
	}
	binary.BigEndian.PutUint32(payload, id)
	return nil
}

// ObserveTraceID reads the propagated trace id off an encoded MsgObserve
// payload in O(1): the flags byte says whether the frame is traced, and
// the id is always the trailing 8 bytes. Returns (0, false) for an
// untraced or too-short payload.
func ObserveTraceID(payload []byte) (uint64, bool) {
	if len(payload) < observeSessOff+8 || payload[observeFlagsOff]&FlagTraced == 0 {
		return 0, false
	}
	return binary.BigEndian.Uint64(payload[len(payload)-8:]), true
}

// AppendObserveTrace tags an encoded MsgObserve payload with a trace id
// without re-encoding it: set FlagTraced in place, append the id's 8
// bytes, return the (possibly reallocated) payload. An already-traced
// payload keeps its length and has its trailing id overwritten — a relay
// adopting an upstream id calls this idempotently. This is the router's
// injection path: the zero-copy relay tags the raw payload it received
// and AppendFrame re-frames it with the corrected length.
func AppendObserveTrace(payload []byte, trace uint64) ([]byte, error) {
	if len(payload) < observeSessOff {
		return payload, ErrTruncated
	}
	if trace == 0 {
		return payload, nil
	}
	if payload[observeFlagsOff]&FlagTraced != 0 {
		if len(payload) < observeSessOff+8 {
			return payload, ErrTruncated
		}
		binary.BigEndian.PutUint64(payload[len(payload)-8:], trace)
		return payload, nil
	}
	payload[observeFlagsOff] |= FlagTraced
	return appendU64(payload, trace), nil
}

// AppendFrame frames an already-encoded payload: header plus payload
// bytes, no interpretation. Relays use it to forward a payload they
// received (id rewritten via SetObserveID) without re-encoding it.
func AppendFrame(dst []byte, typ byte, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return dst, ErrFrameTooLarge
	}
	out, lenAt := appendHeader(dst, typ)
	out = append(out, payload...)
	binary.BigEndian.PutUint32(out[lenAt:], uint32(len(payload)))
	return out, nil
}

// decoder walks a payload with bounds checks; every take* reports
// truncation instead of reading past the end.
type decoder struct {
	p   []byte
	off int
}

func (d *decoder) remain() int { return len(d.p) - d.off }

func (d *decoder) takeU8(v *byte) bool {
	if d.remain() < 1 {
		return false
	}
	*v = d.p[d.off]
	d.off++
	return true
}

func (d *decoder) takeU16(v *uint16) bool {
	if d.remain() < 2 {
		return false
	}
	*v = binary.BigEndian.Uint16(d.p[d.off:])
	d.off += 2
	return true
}

func (d *decoder) takeU32(v *uint32) bool {
	if d.remain() < 4 {
		return false
	}
	*v = binary.BigEndian.Uint32(d.p[d.off:])
	d.off += 4
	return true
}

func (d *decoder) takeU64(v *uint64) bool {
	if d.remain() < 8 {
		return false
	}
	*v = binary.BigEndian.Uint64(d.p[d.off:])
	d.off += 8
	return true
}

func (d *decoder) takeF64(v *float64) bool {
	var bits uint64
	if !d.takeU64(&bits) {
		return false
	}
	*v = math.Float64frombits(bits)
	return true
}

// takeBytes copies n payload bytes into *dst, reusing its capacity.
func (d *decoder) takeBytes(dst *[]byte, n int) bool {
	if d.remain() < n {
		return false
	}
	*dst = append((*dst)[:0], d.p[d.off:d.off+n]...)
	d.off += n
	return true
}

// Decode parses a MsgObserve payload into m, reusing m's slice capacity.
// m is unspecified (but safe to reuse) after an error.
func (m *Observe) Decode(payload []byte) error {
	d := decoder{p: payload}
	var epoch uint64
	var opp uint32
	var sessLen byte
	ok := d.takeU32(&m.ID) &&
		d.takeU8(&m.Flags) &&
		d.takeU64(&epoch) &&
		d.takeF64(&m.Obs.ExecTimeS) &&
		d.takeF64(&m.Obs.PeriodS) &&
		d.takeF64(&m.Obs.WallTimeS) &&
		d.takeF64(&m.Obs.PowerW) &&
		d.takeF64(&m.Obs.TempC) &&
		d.takeU32(&opp) &&
		d.takeU8(&sessLen)
	if !ok {
		return ErrTruncated
	}
	m.Obs.Epoch = int(int64(epoch))
	m.Obs.OPPIdx = int(int32(opp))
	if int(sessLen) > MaxSession {
		return fmt.Errorf("%w: session id of %d bytes", ErrTooLong, sessLen)
	}
	if !d.takeBytes(&m.Session, int(sessLen)) {
		return ErrTruncated
	}
	var n uint16
	if !d.takeU16(&n) {
		return ErrTruncated
	}
	if int(n) > MaxVector {
		return fmt.Errorf("%w: %d cycle entries", ErrTooLong, n)
	}
	if d.remain() < int(n)*8 {
		return ErrTruncated
	}
	m.Obs.Cycles = m.Obs.Cycles[:0]
	for i := 0; i < int(n); i++ {
		var c uint64
		d.takeU64(&c)
		m.Obs.Cycles = append(m.Obs.Cycles, c)
	}
	if !d.takeU16(&n) {
		return ErrTruncated
	}
	if int(n) > MaxVector {
		return fmt.Errorf("%w: %d util entries", ErrTooLong, n)
	}
	if d.remain() < int(n)*8 {
		return ErrTruncated
	}
	m.Obs.Util = m.Obs.Util[:0]
	for i := 0; i < int(n); i++ {
		var u float64
		d.takeF64(&u)
		m.Obs.Util = append(m.Obs.Util, u)
	}
	m.TraceID = 0
	if m.Flags&FlagTraced != 0 && !d.takeU64(&m.TraceID) {
		return ErrTruncated
	}
	if d.remain() != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// Decode parses a MsgDecide payload into m, reusing m.Err capacity.
func (m *Decide) Decode(payload []byte) error {
	d := decoder{p: payload}
	var opp, freq uint32
	var errLen uint16
	if !(d.takeU32(&m.ID) && d.takeU32(&m.MemberEpoch) && d.takeU32(&opp) && d.takeU32(&freq) && d.takeU16(&errLen)) {
		return ErrTruncated
	}
	m.OPPIdx = int32(opp)
	m.FreqMHz = int32(freq)
	if !d.takeBytes(&m.Err, int(errLen)) {
		return ErrTruncated
	}
	if d.remain() != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// Decode parses a MsgControl payload into m, reusing m's slice capacity.
func (m *Control) Decode(payload []byte) error {
	d := decoder{p: payload}
	var sessLen byte
	if !(d.takeU32(&m.ID) && d.takeU8(&m.Op) && d.takeU8(&sessLen)) {
		return ErrTruncated
	}
	if int(sessLen) > MaxSession {
		return fmt.Errorf("%w: session id of %d bytes", ErrTooLong, sessLen)
	}
	if !d.takeBytes(&m.Session, int(sessLen)) {
		return ErrTruncated
	}
	var bodyLen uint32
	if !d.takeU32(&bodyLen) {
		return ErrTruncated
	}
	// The frame bound already caps the payload; checking against what
	// actually remains rejects a forged length before any allocation.
	if int64(bodyLen) != int64(d.remain()) {
		if int(bodyLen) > d.remain() {
			return ErrTruncated
		}
		return ErrTrailingBytes
	}
	if !d.takeBytes(&m.Body, int(bodyLen)) {
		return ErrTruncated
	}
	return nil
}

// Decode parses a MsgControlReply payload into m, reusing m.Body capacity.
func (m *ControlReply) Decode(payload []byte) error {
	d := decoder{p: payload}
	if !(d.takeU32(&m.ID) && d.takeU16(&m.Status)) {
		return ErrTruncated
	}
	var bodyLen uint32
	if !d.takeU32(&bodyLen) {
		return ErrTruncated
	}
	if int64(bodyLen) != int64(d.remain()) {
		if int(bodyLen) > d.remain() {
			return ErrTruncated
		}
		return ErrTrailingBytes
	}
	if !d.takeBytes(&m.Body, int(bodyLen)) {
		return ErrTruncated
	}
	return nil
}

// checkHeader validates a frame header and returns its type and payload
// length.
func checkHeader(hdr []byte) (typ byte, n int, err error) {
	if binary.BigEndian.Uint16(hdr) != Magic {
		return 0, 0, ErrBadMagic
	}
	if hdr[2] != Version {
		return 0, 0, fmt.Errorf("%w: got %d, speak %d", ErrBadVersion, hdr[2], Version)
	}
	n = int(binary.BigEndian.Uint32(hdr[4:]))
	if n > MaxPayload {
		return 0, 0, ErrFrameTooLarge
	}
	return hdr[3], n, nil
}

// DecodeFrame splits one frame off the front of b, returning its type,
// payload, and the remaining bytes. The payload aliases b.
func DecodeFrame(b []byte) (typ byte, payload, rest []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, b, ErrTruncated
	}
	typ, n, err := checkHeader(b[:HeaderSize])
	if err != nil {
		return 0, nil, b, err
	}
	if len(b) < HeaderSize+n {
		return 0, nil, b, ErrTruncated
	}
	return typ, b[HeaderSize : HeaderSize+n], b[HeaderSize+n:], nil
}

// Reader reads frames off a stream, reusing one payload buffer: the
// payload returned by Next is valid only until the following call. A
// clean end of stream at a frame boundary returns io.EOF; mid-frame it
// returns io.ErrUnexpectedEOF.
type Reader struct {
	br  *bufio.Reader
	hdr [HeaderSize]byte
	buf []byte
}

// NewReader wraps r. The buffer is sized for a full decide batch of
// observe frames between flushes.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next frame. Protocol errors (bad magic, bad version,
// oversized frame) poison the stream — framing is lost, so callers must
// drop the connection.
func (r *Reader) Next() (typ byte, payload []byte, err error) {
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		return 0, nil, err // io.EOF exactly at a frame boundary
	}
	typ, n, err := checkHeader(r.hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n) // bounded by MaxPayload
	}
	payload = r.buf[:n]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}
