package stats

import "math"

// Prediction-error metrics. These score a predictor (EWMA, NLMS, …) against
// the actual per-epoch workload, producing the misprediction percentages
// reported for Fig. 3 of the paper.

// AbsErrors returns |pred[i]-actual[i]| element-wise. The slices must have
// equal length; mismatched inputs indicate a harness bug, so it panics.
func AbsErrors(pred, actual []float64) []float64 {
	if len(pred) != len(actual) {
		panic("stats: AbsErrors length mismatch")
	}
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = math.Abs(pred[i] - actual[i])
	}
	return out
}

// MAPE returns the mean absolute percentage error of pred against actual,
// as a fraction (0.08 == 8 %). Samples with actual == 0 are skipped; if all
// samples are skipped the result is NaN.
//
// The paper's Fig. 3 quotes the "average misprediction with respect to the
// average workload"; that variant is MAPEOfMean below. Plain MAPE is kept
// for the predictor-comparison ablation.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: MAPE length mismatch")
	}
	var sum float64
	var n int
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MAPEOfMean returns mean(|pred-actual|) / mean(actual), the misprediction
// measure used in Section III-B of the paper ("with respect to the average
// workload"). The result is a fraction. It returns NaN when mean(actual)
// is zero or the inputs are empty.
func MAPEOfMean(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: MAPEOfMean length mismatch")
	}
	if len(actual) == 0 {
		return math.NaN()
	}
	ma := Mean(actual)
	if ma == 0 {
		return math.NaN()
	}
	return Mean(AbsErrors(pred, actual)) / math.Abs(ma)
}

// RMSE returns the root-mean-square error of pred against actual.
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	var ss float64
	for i := range pred {
		d := pred[i] - actual[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred)))
}

// Diff returns the first difference xs[i+1]-xs[i]; the result is one
// element shorter than the input.
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// Linreg fits y = a + b*x by ordinary least squares and returns (a, b).
// It returns NaNs when fewer than two points or when x is degenerate.
// The experiment shape-checks use the slope sign (e.g. "energy decreases
// as N grows") rather than absolute values.
func Linreg(x, y []float64) (a, b float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return math.NaN(), math.NaN()
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}
