// Package fft implements radix-2 Cooley–Tukey fast Fourier transforms.
//
// The paper evaluates an FFT application at 32 frames per second (Table II).
// Rather than invent its cycle demands, the workload model executes this
// kernel and converts its counted arithmetic operations into cycle demands
// via a fixed cycles-per-butterfly cost (see internal/workload). Keeping a
// real, tested FFT in the tree grounds that model and gives the example
// programs a genuine computation to run.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// OpCount tallies the arithmetic work of one transform. One radix-2
// butterfly is one complex multiply and two complex additions.
type OpCount struct {
	Butterflies int // complex multiply-accumulate pairs
	Stages      int // log2(n) passes over the data
	N           int // transform length
}

// CyclesAt converts the operation count into core cycles using a
// cycles-per-butterfly cost. On an out-of-order ARMv7 core a radix-2
// butterfly (4 real multiplies, 6 real adds, loads/stores) retires in
// roughly 8–14 cycles depending on cache behaviour; callers pick the
// constant, keeping the mapping explicit rather than baked in.
func (c OpCount) CyclesAt(cyclesPerButterfly float64) uint64 {
	if cyclesPerButterfly <= 0 {
		panic("fft: cyclesPerButterfly must be positive")
	}
	return uint64(float64(c.Butterflies) * cyclesPerButterfly)
}

// Transform computes the in-place decimation-in-time FFT of x, which must
// have power-of-two length, and returns the operation count. The sign
// convention is engineering-standard: X[k] = Σ x[n]·e^{-2πi kn/N}.
func Transform(x []complex128) (OpCount, error) {
	n := len(x)
	if n == 0 {
		return OpCount{}, fmt.Errorf("fft: empty input")
	}
	if n&(n-1) != 0 {
		return OpCount{}, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	bitReverse(x)
	stages := bits.TrailingZeros(uint(n))
	butterflies := 0
	for s := 1; s <= stages; s++ {
		m := 1 << s
		half := m >> 1
		// Principal m-th root of unity, negative exponent for the forward
		// transform.
		wm := cmplx.Exp(complex(0, -2*math.Pi/float64(m)))
		for k := 0; k < n; k += m {
			w := complex(1, 0)
			for j := 0; j < half; j++ {
				t := w * x[k+j+half]
				u := x[k+j]
				x[k+j] = u + t
				x[k+j+half] = u - t
				w *= wm
				butterflies++
			}
		}
	}
	return OpCount{Butterflies: butterflies, Stages: stages, N: n}, nil
}

// Inverse computes the in-place inverse FFT of x (power-of-two length),
// normalised by 1/N, and returns the operation count.
func Inverse(x []complex128) (OpCount, error) {
	// Conjugate trick: IFFT(x) = conj(FFT(conj(x)))/N.
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	ops, err := Transform(x)
	if err != nil {
		return ops, err
	}
	invN := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * invN
	}
	return ops, nil
}

// TransformReal computes the FFT of a real-valued signal, returning the
// full complex spectrum and the operation count.
func TransformReal(x []float64) ([]complex128, OpCount, error) {
	buf := make([]complex128, len(x))
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	ops, err := Transform(buf)
	if err != nil {
		return nil, ops, err
	}
	return buf, ops, nil
}

// bitReverse permutes x into bit-reversed index order in place.
func bitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// NaiveDFT computes the O(N²) discrete Fourier transform. It exists as the
// oracle the tests compare Transform against and is exported for the
// quickstart example's self-check.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = acc
	}
	return out
}

// ExpectedButterflies returns the analytic butterfly count (N/2)·log2(N)
// for a length-N radix-2 transform.
func ExpectedButterflies(n int) int {
	if n <= 1 {
		return 0
	}
	return n / 2 * bits.TrailingZeros(uint(n))
}
