package registry

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"qgov/internal/atomicfile"
	"qgov/internal/sessionstore"
)

// BlobStore is the registry's storage seam: a flat keyed blob space with
// atomic replacement. Keys are slash-separated paths of filename-safe
// segments ("manifest/ab12", "session/cluster0"), which is exactly the
// object-key shape an S3-style backend exposes — the two local
// implementations here (Mem for tests and single-process fleets, Dir for
// shared-filesystem fleets) are stand-ins behind the same interface.
//
// Put must be atomic with respect to Get: a concurrent Get returns
// either the previous blob or the new one, never a torn write.
type BlobStore interface {
	// Put durably replaces the blob at key.
	Put(key string, data []byte) error
	// Get returns the blob at key, or an error satisfying
	// errors.Is(err, fs.ErrNotExist) when none exists.
	Get(key string) ([]byte, error)
	// Delete removes the blob at key; deleting an absent blob is not an
	// error.
	Delete(key string) error
	// List returns the keys under the given prefix, sorted. An empty
	// prefix lists everything.
	List(prefix string) ([]string, error)
}

// checkKey validates a blob key: one or more segments, each legal by
// the shared id rule (sessionstore.ValidID — the same rule session ids
// pass upstream, so nothing the serving layer accepts fails here, and
// no segment can be path-special or collide with the dot-led temp-file
// convention). Violations wrap fs.ErrInvalid so callers holding
// untrusted input (a warm_start manifest id off the wire) can tell
// "malformed reference" from an actual storage failure.
func checkKey(key string) error {
	if key == "" {
		return fmt.Errorf("registry: empty blob key: %w", fs.ErrInvalid)
	}
	for _, seg := range strings.Split(key, "/") {
		if !sessionstore.ValidID(seg) {
			return fmt.Errorf("registry: blob key %q has illegal segment %q: %w", key, seg, fs.ErrInvalid)
		}
	}
	return nil
}

// Mem is the in-memory BlobStore: a mutex-guarded map that copies on the
// way in and out. It is safe for concurrent use; a fleet of in-process
// replicas sharing one *Mem shares checkpoints exactly as a fleet
// sharing a bucket would.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Put implements BlobStore.
func (s *Mem) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements BlobStore.
func (s *Mem) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: blob %q: %w", key, fs.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// Delete implements BlobStore.
func (s *Mem) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// List implements BlobStore.
func (s *Mem) List(prefix string) ([]string, error) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Dir is the local-filesystem BlobStore: each key is a file under the
// root, written atomically (temp file + rename), so replicas sharing the
// directory over NFS-style storage never observe torn blobs. Key
// segments become path segments verbatim; checkKey keeps traversal out.
type Dir struct {
	root string
}

// tmpPrefix names in-flight writes; a crashed writer's leavings hold
// torn state by definition and are swept by NewDir (atomicfile owns the
// age gate that protects shared storage).
const tmpPrefix = ".blob-"

// NewDir creates the root if needed and sweeps stale temp files.
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: blob dir: %w", err)
	}
	// Fail fast on an unreadable root (the sweep ignores walk errors).
	if _, err := os.ReadDir(root); err != nil {
		return nil, fmt.Errorf("registry: blob dir: %w", err)
	}
	atomicfile.SweepTemps(root, tmpPrefix)
	return &Dir{root: root}, nil
}

// Root returns the directory backing the store.
func (d *Dir) Root() string { return d.root }

func (d *Dir) file(key string) string {
	return filepath.Join(d.root, filepath.FromSlash(key))
}

// Put implements BlobStore via atomicfile's temp + rename discipline.
func (d *Dir) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	path := d.file(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, data, tmpPrefix)
}

// Get implements BlobStore.
func (d *Dir) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	return os.ReadFile(d.file(key))
}

// Delete implements BlobStore.
func (d *Dir) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	err := os.Remove(d.file(key))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements BlobStore: a walk reporting keys in slash form, temp
// files excluded. Only the subtree the prefix's directory part names is
// walked — List("session/") on a store holding a million blobs reads
// the session directory alone, the same access shape a prefix-scoped
// object-store listing has.
func (d *Dir) List(prefix string) ([]string, error) {
	// The prefix joins into a filesystem path below, so it gets the same
	// traversal hygiene as full keys (a prefix may legally end
	// mid-segment, so checkKey itself is too strict).
	if strings.Contains(prefix, "..") || strings.HasPrefix(prefix, "/") {
		return nil, fmt.Errorf("registry: illegal list prefix %q: %w", prefix, fs.ErrInvalid)
	}
	// Walk from the deepest directory the prefix fully names; the
	// remainder (a partial segment, e.g. "session/ab") filters below.
	start := d.root
	if i := strings.LastIndexByte(prefix, '/'); i >= 0 {
		start = filepath.Join(d.root, filepath.FromSlash(prefix[:i]))
	}
	if _, err := os.Stat(start); os.IsNotExist(err) {
		return nil, nil
	}
	var keys []string
	err := filepath.WalkDir(start, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // raced with a delete
			}
			return err
		}
		if e.IsDir() || strings.HasPrefix(e.Name(), tmpPrefix) {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}
