package core

import (
	"testing"

	"qgov/internal/governor"
	"qgov/internal/platform"
)

func TestMultiRTMConstructionValidation(t *testing.T) {
	cases := []func(){
		func() { NewMultiRTM(DefaultConfig(), 0) },
		func() { NewMultiRTM(Config{Levels: 5}, 2) }, // missing Reward/Policy/Epsilon
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMultiRTMAppCountMismatchPanics(t *testing.T) {
	m := NewMultiRTM(DefaultConfig(), 2)
	m.Reset(rtmCtx(1))
	m.DecideMulti(MultiObservation{Epoch: -1})
	defer func() {
		if recover() == nil {
			t.Fatal("observing 1 app on a 2-app controller must panic")
		}
	}()
	m.DecideMulti(MultiObservation{
		Epoch: 0,
		Apps:  []AppObservation{{ExecTimeS: 0.01, PeriodS: 0.04, CriticalCycles: 1e6}},
	})
}

// driveMultiSteady runs the controller against two idealised steady apps
// with distinct demands and deadlines, computing per-app exec times from
// the chosen frequency exactly.
func driveMultiSteady(m *MultiRTM, cyA, cyB uint64, refA, refB float64, epochs int) []int {
	ctx := rtmCtx(21)
	m.Reset(ctx)
	idx := m.DecideMulti(MultiObservation{Epoch: -1})
	picks := make([]int, 0, epochs)
	for i := 0; i < epochs; i++ {
		f := ctx.Table[idx].FreqHz()
		ovh := m.DecisionOverheadS()
		obs := MultiObservation{
			Epoch: i,
			Apps: []AppObservation{
				{ExecTimeS: float64(cyA)/f + ovh, PeriodS: refA, CriticalCycles: cyA},
				{ExecTimeS: float64(cyB)/f + ovh, PeriodS: refB, CriticalCycles: cyB},
			},
		}
		idx = m.DecideMulti(obs)
		picks = append(picks, idx)
	}
	return picks
}

func TestMultiRTMServesTheBindingApp(t *testing.T) {
	// App A needs 500 MHz (20 Mcycles / 40 ms); app B needs 1 GHz
	// (25 Mcycles / 25 ms). The controller must settle at or above app
	// B's requirement — the binding constraint — not app A's.
	m := NewMultiRTM(DefaultConfig(), 2)
	if err := m.Calibrate([]float64{15e6, 20e6, 25e6, 30e6}); err != nil {
		t.Fatal(err)
	}
	picks := driveMultiSteady(m, 20e6, 25e6, 0.040, 0.025, 800)
	table := platform.A15Table()
	for _, idx := range picks[len(picks)-30:] {
		if mhz := table[idx].FreqMHz; mhz < 1000 || mhz > 1500 {
			t.Fatalf("steady pick %d MHz; binding app needs 1000 MHz", mhz)
		}
	}
	if m.ConvergedAtEpoch() < 0 {
		t.Fatal("multi-app controller did not converge on steady demand")
	}
	if m.Explorations() == 0 {
		t.Fatal("no explorations recorded")
	}
}

func TestMultiRTMTracksPerAppSlack(t *testing.T) {
	m := NewMultiRTM(DefaultConfig(), 2)
	if err := m.Calibrate([]float64{15e6, 20e6, 25e6, 30e6}); err != nil {
		t.Fatal(err)
	}
	driveMultiSteady(m, 20e6, 25e6, 0.040, 0.025, 800)
	// App A (loose deadline) must show more slack than app B (binding).
	if !(m.SlackL(0) > m.SlackL(1)) {
		t.Fatalf("slack ordering wrong: loose app %v, binding app %v", m.SlackL(0), m.SlackL(1))
	}
	// The binding app's slack should sit in a sane band, not deep misses.
	if m.SlackL(1) < -0.1 {
		t.Fatalf("binding app chronically missing: L = %v", m.SlackL(1))
	}
}

func TestMultiRTMOverheadScalesWithApps(t *testing.T) {
	one := NewMultiRTM(DefaultConfig(), 1)
	three := NewMultiRTM(DefaultConfig(), 3)
	if !(three.DecisionOverheadS() > one.DecisionOverheadS()) {
		t.Fatal("tracking more applications must cost more per decision")
	}
}

func TestMultiRTMAutoRange(t *testing.T) {
	// Without calibration the controller must still run and stabilise.
	m := NewMultiRTM(DefaultConfig(), 2)
	picks := driveMultiSteady(m, 18e6, 22e6, 0.040, 0.030, 600)
	if len(picks) != 600 {
		t.Fatal("auto-ranged run did not complete")
	}
	table := platform.A15Table()
	// Binding requirement: 22e6/0.030 = 733 MHz.
	for _, idx := range picks[len(picks)-20:] {
		if mhz := table[idx].FreqMHz; mhz < 700 || mhz > 1400 {
			t.Fatalf("auto-ranged pick %d MHz implausible for a 733 MHz requirement", mhz)
		}
	}
}

func TestMultiRTMFirstEpochSafeStart(t *testing.T) {
	m := NewMultiRTM(DefaultConfig(), 2)
	m.Reset(governor.Context{Table: platform.A15Table(), NumCores: 4, PeriodS: 0.04, Seed: 1})
	if got := m.DecideMulti(MultiObservation{Epoch: -1}); got != 0 {
		t.Fatalf("first decision %d, want the reset platform's slowest point", got)
	}
}
