// Command rtmsim runs one governor against one workload on the simulated
// ODROID-XU3 A15 cluster and prints the run summary, optionally with the
// per-frame trace.
//
// Usage:
//
//	rtmsim -workload h264-football -governor rtm
//	rtmsim -scenario rtm/h264-football/a15
//	rtmsim -scenario mldtm/mpeg4-30fps/a7 -frames 500 -seed 7
//	rtmsim -workload mpeg4-svga24 -governor rtm -csv run.csv
//	rtmsim -scenario rtm/h264-football/a15 -save-state rtm.state
//	rtmsim -scenario rtm/h264-football/a15 -load-state rtm.state
//	rtmsim -trace mytrace.csv -governor performance
//	rtmsim -list
//
// -save-state and -load-state work for every learning governor (the RTM
// variants, updrl, mldtm) through governor.Checkpointer: train a run,
// freeze it, and warm-start any later run of the same governor — the
// learning-transfer capability, generalised. -save-qtable/-load-qtable
// are kept as aliases from when only the RTM could do this; the file
// format is the checkpoint envelope, not a bare Q-table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/scenario"
	"qgov/internal/sim"
	"qgov/internal/workload"

	// Register the RTM variants with the governor registry.
	_ "qgov/internal/core"
)

func main() {
	var (
		scenarioName = flag.String("scenario", "", "named scenario governor/workload/platform (overrides -workload/-governor)")
		workloadName = flag.String("workload", "h264-football", "workload name (see -list)")
		governorName = flag.String("governor", "rtm", "governor name (see -list)")
		tracePath    = flag.String("trace", "", "CSV trace to replay instead of -workload")
		frames       = flag.Int("frames", 0, "truncate/extend the workload to this many frames (0: default)")
		seed         = flag.Int64("seed", 1, "simulation seed")
		mhz          = flag.Int("mhz", 0, "with -governor userspace: the pinned frequency")
		csvPath      = flag.String("csv", "", "write the per-frame records to this CSV file")
		list         = flag.Bool("list", false, "list workloads, governors and scenario segments, then exit")

		saveState, loadState string
	)
	flag.StringVar(&saveState, "save-state", "", "freeze the governor's learnt state here after the run (any learning governor)")
	flag.StringVar(&saveState, "save-qtable", "", "alias for -save-state")
	flag.StringVar(&loadState, "load-state", "", "warm-start the governor from this state file (learning transfer)")
	flag.StringVar(&loadState, "load-qtable", "", "alias for -load-state")
	flag.Parse()

	if *list {
		fmt.Println("workloads: ", strings.Join(workload.Names(), " "))
		fmt.Println("governors: ", strings.Join(governor.Names(), " "), " userspace oracle")
		fmt.Println("platforms: ", strings.Join(scenario.Platforms(), " "))
		fmt.Printf("scenarios:  %d combinations of governor/workload/platform, e.g. %s\n",
			len(scenario.Names()), "rtm/h264-football/a15")
		return
	}

	var cfg sim.Config
	var tr workload.Trace
	if *scenarioName != "" {
		// A scenario fully determines trace, governor and platform; flags
		// that would silently contradict it are errors, not no-ops.
		if *tracePath != "" || *mhz != 0 {
			fatal(fmt.Errorf("-scenario cannot be combined with -trace or -mhz"))
		}
		sc, err := scenario.Get(*scenarioName)
		if err != nil {
			fatal(err)
		}
		cfg, err = sc.Config(*seed, *frames)
		if err != nil {
			fatal(err)
		}
		tr = cfg.Trace
	} else {
		var err error
		tr, err = resolveTrace(*tracePath, *workloadName, *seed, *frames)
		if err != nil {
			fatal(err)
		}
		gov, err := resolveGovernor(*governorName, *mhz, tr)
		if err != nil {
			fatal(err)
		}
		cfg = sim.Config{Trace: tr, Governor: gov, Seed: *seed}
	}
	gov := cfg.Governor
	cfg.Record = *csvPath != ""

	if loadState != "" {
		f, err := os.Open(loadState)
		if err != nil {
			fatal(err)
		}
		err = scenario.WarmStart(gov, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	res := sim.Run(cfg)

	fmt.Printf("workload   %s (%d frames @ %.4g fps)\n", res.Workload, res.Frames, tr.FPS())
	fmt.Printf("governor   %s\n", res.Governor)
	fmt.Printf("energy     %.3f J (sensor-reported %.3f J)\n", res.EnergyJ, res.SensorEnergyJ)
	fmt.Printf("mean power %.3f W over %.2f s simulated\n", res.MeanPowerW, res.SimTimeS)
	fmt.Printf("norm perf  %.3f (exec/Tref; <1 over-performs)\n", res.NormPerf)
	fmt.Printf("misses     %d (%.2f%%)\n", res.Misses, res.MissRate*100)
	fmt.Printf("dvfs       %d transitions, final temp %.1f °C\n", res.Transitions, res.FinalTempC)
	if res.Explorations >= 0 {
		fmt.Printf("learning   %d explorations (%d before convergence), converged at epoch %d\n",
			res.Explorations, res.ExplorationsToConv, res.ConvergedAt)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sim.WriteRecordsCSV(f, res.Records); err != nil {
			fatal(err)
		}
		res.Release()
		fmt.Printf("records    written to %s\n", *csvPath)
	}

	if saveState != "" {
		f, err := os.Create(saveState)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := scenario.Freeze(gov, f); err != nil {
			fatal(err)
		}
		fmt.Printf("state      written to %s (learning transfer: replay with -load-state)\n", saveState)
	}
}

func resolveTrace(path, name string, seed int64, frames int) (workload.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return workload.Trace{}, err
		}
		defer f.Close()
		tr, err := workload.ReadCSV(f)
		if err != nil {
			return workload.Trace{}, err
		}
		if frames > 0 {
			tr = tr.Slice(0, frames)
		}
		return tr, nil
	}
	gen, err := workload.ByName(name)
	if err != nil {
		return workload.Trace{}, err
	}
	return gen(seed, frames), nil
}

func resolveGovernor(name string, mhz int, tr workload.Trace) (governor.Governor, error) {
	if name == "userspace" {
		if mhz == 0 {
			return nil, fmt.Errorf("userspace governor needs -mhz")
		}
		if platform.A15Table().IndexOfMHz(mhz) < 0 {
			return nil, fmt.Errorf("no A15 operating point at %d MHz", mhz)
		}
		return governor.NewUserspace(mhz), nil
	}
	// Everything else — including the Oracle and learner calibration — is
	// the scenario registry's standard build path.
	return scenario.BuildGovernor(name, tr, platform.DefaultA15PowerModel())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmsim:", err)
	os.Exit(1)
}
