// Package client speaks the rtmd binary wire protocol: a persistent
// multiplexed TCP connection carrying observe→decide frames plus the
// control plane (session create, checkpoint, delete, info, metrics,
// list) as control frames. Many goroutines may share one Client —
// requests are tagged with ids, writes of a batch coalesce into one
// flush, and a single reader goroutine routes responses back to their
// callers. The router drives every replica through one Client; the
// serve benchmarks and the cross-transport equivalence tests drive
// their sessions through it too.
//
// Ordering: frames written on one Client are executed by the server in
// write order, with control frames acting as barriers — a Control
// create issued before a Decide for the same session is applied first.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/governor"
	"qgov/internal/wire"
)

// Decision is one answered request. Err mirrors the per-entry error of
// the JSON batch API: non-empty means this request failed (unknown
// session, rejected observation) while others in the batch may have
// succeeded.
type Decision struct {
	OPPIdx  int
	FreqMHz int
	Err     string
}

// Request ids pack a batch handle and an index: the high 20 bits name
// the DecideBatch call, the low 12 its entry. One routing-table insert
// covers a whole batch, so the per-decision client cost is a shared-map
// read — not an insert/delete pair — which matters at 500k decisions/s.
const (
	indexBits = 12
	// MaxBatch bounds one DecideBatch call (it must fit the index bits);
	// it equals the server's per-fan-out coalescing limit.
	MaxBatch = 1 << indexBits
)

// batchCall tracks one DecideBatch in flight. The reader fills out
// entries as frames arrive (any order) and closes done when the last
// one lands. answered is a bitset over out: a duplicate of an
// already-answered id is dropped instead of decrementing remaining a
// second time — otherwise a hostile or buggy server could close the
// batch early and unfilled entries would come back as zero-valued
// decisions, indistinguishable from the real thing.
type batchCall struct {
	out       []Decision
	answered  []uint64
	remaining int
	done      chan struct{}
}

// DefaultTimeout bounds one round trip (batch or control) on a Client:
// a server that stops answering — hung process, blackholed network with
// the TCP session still open — must surface as a transport error, not
// wedge every caller forever. A router holds its membership lock across
// these waits, so an unbounded hang there would stall a whole fleet. A
// healthy replica answers in microseconds; 30 s only ever fires on a
// genuinely stuck peer.
const DefaultTimeout = 30 * time.Second

// Client is a multiplexed connection to an rtmd binary listener.
type Client struct {
	conn net.Conn

	// Timeout bounds each round trip; 0 selects DefaultTimeout and a
	// negative value disables the bound. Set before sharing the client.
	Timeout time.Duration

	// wmu serialises the write half: frame encoding into enc and the
	// buffered writer.
	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte

	// mu guards the routing tables and the sticky transport error.
	mu          sync.Mutex
	pending     map[uint32]*batchCall // keyed by batch handle (id >> indexBits)
	pendingCtrl map[uint32]*ctrlCall  // keyed by full control request id
	nextBatch   uint32
	nextCtrl    uint32
	err         error

	// lastEpoch is the highest membership epoch seen in any decide reply
	// (monotonic; 0 until a fleet replica answers).
	lastEpoch atomic.Uint32

	readerDone chan struct{}
}

// ctrlCall tracks one Control round trip. The reader copies the reply
// out (the frame buffer is reused) and closes done.
type ctrlCall struct {
	status uint16
	body   []byte
	done   chan struct{}
}

// Dial connects to an rtmd -listen-tcp address.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:        conn,
		bw:          bufio.NewWriterSize(conn, 64<<10),
		pending:     make(map[uint32]*batchCall),
		pendingCtrl: make(map[uint32]*ctrlCall),
		readerDone:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Err returns the client's sticky transport error — nil while the
// connection is healthy. Once non-nil every call fails; the owner
// should redial.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down; in-flight requests fail with a
// transport error.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// CloseWrite half-closes the connection: the server sees end of stream,
// drains what it already received, answers, and closes. Callers read
// their remaining responses through in-flight DecideBatch calls.
func (c *Client) CloseWrite() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return errors.New("client: connection does not support half-close")
}

// Decide serves one observation for one session and returns the
// operating-point decision.
func (c *Client) Decide(session string, obs governor.Observation) (Decision, error) {
	var out [1]Decision
	if err := decideBatch(c, []string{session}, []governor.Observation{obs}, out[:], 0); err != nil {
		return Decision{}, err
	}
	return out[0], nil
}

// DecideBatch serves one observation per session — the binary twin of
// POST /v1/decide. All frames are written under one flush; the call
// returns when every response has arrived, filling out[i] for
// sessions[i]. A returned error is transport-level and poisons the
// client; per-request failures land in out[i].Err instead.
func (c *Client) DecideBatch(sessions []string, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, 0)
}

// DecideBatchBytes is DecideBatch for callers that already hold session
// ids as bytes — a router regrouping decoded frames by ring owner skips
// one string conversion per decision on its hot path.
func (c *Client) DecideBatchBytes(sessions [][]byte, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, 0)
}

// ForwardBatch relays observes that arrived at the wrong replica to the
// ring owner on behalf of a stale direct client. Each frame carries
// wire.FlagForwarded, so the receiver answers locally even if its own
// table disagrees — bounding transient membership disagreement to one
// extra hop instead of a forwarding loop.
func (c *Client) ForwardBatch(sessions [][]byte, obs []governor.Observation, out []Decision) error {
	if len(sessions) != len(obs) || len(sessions) != len(out) {
		return fmt.Errorf("client: mismatched batch slices (%d sessions, %d observations, %d outputs)",
			len(sessions), len(obs), len(out))
	}
	if len(sessions) == 0 {
		return nil
	}
	return decideBatch(c, sessions, obs, out, wire.FlagForwarded)
}

// LastMemberEpoch returns the highest membership epoch observed in any
// decide reply on this connection — 0 until a fleet replica has
// answered. A Fleet compares it against its own table's epoch to detect
// a ring change from the data plane alone.
func (c *Client) LastMemberEpoch() uint32 { return c.lastEpoch.Load() }

func decideBatch[S string | []byte](c *Client, sessions []S, obs []governor.Observation, out []Decision, flags byte) error {
	n := len(sessions)
	if n > MaxBatch {
		return fmt.Errorf("client: batch of %d exceeds the %d-request limit", n, MaxBatch)
	}
	bc := &batchCall{
		out:       out,
		answered:  make([]uint64, (n+63)/64),
		remaining: n,
		done:      make(chan struct{}),
	}

	// Reserve a batch handle and publish the routing entry before any
	// frame can be answered. Handles wrap after 2^20 batches; a handle
	// whose previous holder is still waiting (a slow batch outliving 2^20
	// successors) is skipped — overwriting it would strand that waiter
	// until timeout and misroute its replies into this batch.
	const handleMask = 1<<(32-indexBits) - 1
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	handle := c.nextBatch & handleMask
	for c.pending[handle] != nil {
		if len(c.pending) > handleMask {
			c.mu.Unlock()
			return fmt.Errorf("client: all %d batch handles in flight", handleMask+1)
		}
		c.nextBatch++
		handle = c.nextBatch & handleMask
	}
	c.nextBatch++
	c.pending[handle] = bc
	c.mu.Unlock()
	base := handle << indexBits

	// Encode every frame and flush once.
	c.wmu.Lock()
	var err error
	for i := 0; i < n && err == nil; i++ {
		c.enc, err = wire.AppendObserveFlags(c.enc[:0], base|uint32(i), flags, sessions[i], &obs[i])
		if err == nil {
			_, err = c.bw.Write(c.enc)
		}
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, handle)
		c.mu.Unlock()
		return err
	}

	if err := c.wait(bc.done); err != nil {
		return err
	}
	c.mu.Lock()
	err = c.err
	c.mu.Unlock()
	if bc.remaining != 0 { // released by fail(), not by the last response
		return fmt.Errorf("client: transport failed mid-batch: %w", err)
	}
	return nil
}

// wait blocks on done up to the client's timeout. On expiry it cuts the
// connection — the reader then fails every waiter (including this one),
// so the poisoned client degrades to per-call transport errors instead
// of unbounded hangs.
func (c *Client) wait(done <-chan struct{}) error {
	d := c.Timeout
	if d == 0 {
		d = DefaultTimeout
	}
	if d < 0 {
		<-done
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-t.C:
		c.conn.Close()
		<-done // released by fail() once the reader sees the closed conn
		return fmt.Errorf("client: no response within %v; connection dropped", d)
	}
}

// Control runs one control-plane operation (a wire.Op* constant) against
// the server and returns its HTTP-vocabulary status code and JSON body.
// The returned body is the caller's to keep. A returned error is
// transport-level and poisons the client; application failures (unknown
// session, invalid create) come back as non-2xx statuses with an
// {"error": ...} body, exactly like the HTTP control plane.
func (c *Client) Control(op byte, session string, body []byte) (int, []byte, error) {
	cc := &ctrlCall{done: make(chan struct{})}

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	id := c.nextCtrl
	c.nextCtrl++
	c.pendingCtrl[id] = cc
	c.mu.Unlock()

	c.wmu.Lock()
	var err error
	c.enc, err = wire.AppendControl(c.enc[:0], id, op, session, body)
	if err == nil {
		if _, err = c.bw.Write(c.enc); err == nil {
			err = c.bw.Flush()
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pendingCtrl, id)
		c.mu.Unlock()
		return 0, nil, err
	}

	if err := c.wait(cc.done); err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	err = c.err
	c.mu.Unlock()
	if cc.status == 0 { // released by fail(), not by a reply
		return 0, nil, fmt.Errorf("client: transport failed mid-control: %w", err)
	}
	return int(cc.status), cc.body, nil
}

// CreateSession creates a session from a JSON create-request body and
// returns the session-info JSON.
func (c *Client) CreateSession(body []byte) (int, []byte, error) {
	return c.Control(wire.OpCreate, "", body)
}

// CheckpointSession freezes the session's learnt state now; the reply
// body carries {"session": ..., "state": ...}.
func (c *Client) CheckpointSession(id string) (int, []byte, error) {
	return c.Control(wire.OpCheckpoint, id, nil)
}

// DeleteSession drops the session and its checkpoint.
func (c *Client) DeleteSession(id string) (int, []byte, error) {
	return c.Control(wire.OpDelete, id, nil)
}

// SessionInfo returns the session's info JSON.
func (c *Client) SessionInfo(id string) (int, []byte, error) {
	return c.Control(wire.OpInfo, id, nil)
}

// Metrics returns the server's /v1/metrics JSON.
func (c *Client) Metrics() (int, []byte, error) {
	return c.Control(wire.OpMetrics, "", nil)
}

// ListSessions returns the JSON array of every session's info.
func (c *Client) ListSessions() (int, []byte, error) {
	return c.Control(wire.OpList, "", nil)
}

// Health returns the server's /healthz JSON (O(1) on the server).
func (c *Client) Health() (int, []byte, error) {
	return c.Control(wire.OpHealth, "", nil)
}

// Members fetches the server's membership table (a wire.Members JSON
// document; epoch 0 with no members from a flat server outside any
// fleet).
func (c *Client) Members() (int, []byte, error) {
	return c.Control(wire.OpMembers, "", nil)
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	r := wire.NewReader(c.conn)
	var m wire.Decide
	var cm wire.ControlReply
	for {
		typ, payload, err := r.Next()
		if err != nil {
			c.fail(err)
			return
		}
		switch typ {
		case wire.MsgDecide:
			if err := m.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			// Track the server's membership epoch monotonically; replies
			// may be routed to this point from frames decoded in any order.
			for {
				cur := c.lastEpoch.Load()
				if m.MemberEpoch <= cur || c.lastEpoch.CompareAndSwap(cur, m.MemberEpoch) {
					break
				}
			}
			handle, idx := m.ID>>indexBits, int(m.ID&(MaxBatch-1))
			c.mu.Lock()
			bc := c.pending[handle]
			if bc == nil {
				// A decide for a batch we never issued (or one already fully
				// answered): the stream is inconsistent — request ids are
				// ours, a correct server only ever echoes them back once.
				c.mu.Unlock()
				c.fail(fmt.Errorf("client: decide for unknown batch (id %#x)", m.ID))
				return
			}
			if idx >= len(bc.out) {
				c.mu.Unlock()
				c.fail(fmt.Errorf("client: decide index %d beyond batch of %d (id %#x)", idx, len(bc.out), m.ID))
				return
			}
			if bc.answered[idx/64]&(1<<(idx%64)) != 0 {
				// Duplicate of an already-answered id: the first answer
				// stands. Decrementing remaining again would close the batch
				// early and return zero-valued decisions for entries never
				// answered at all.
				c.mu.Unlock()
				continue
			}
			bc.answered[idx/64] |= 1 << (idx % 64)
			d := &bc.out[idx]
			d.OPPIdx = int(m.OPPIdx)
			d.FreqMHz = int(m.FreqMHz)
			if len(m.Err) > 0 {
				d.Err = string(m.Err)
			} else {
				d.Err = ""
			}
			bc.remaining--
			if bc.remaining == 0 {
				delete(c.pending, handle)
				close(bc.done)
			}
			c.mu.Unlock()
		case wire.MsgControlReply:
			if err := cm.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			cc := c.pendingCtrl[cm.ID]
			if cc != nil {
				delete(c.pendingCtrl, cm.ID)
				cc.status = cm.Status
				cc.body = append([]byte(nil), cm.Body...) // the frame buffer is reused
				close(cc.done)
			}
			c.mu.Unlock()
		default:
			c.fail(fmt.Errorf("client: unexpected frame type 0x%02x", typ))
			return
		}
	}
}

// fail records the transport error and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for handle, bc := range c.pending {
		delete(c.pending, handle)
		close(bc.done)
	}
	for id, cc := range c.pendingCtrl {
		delete(c.pendingCtrl, id)
		close(cc.done)
	}
}
