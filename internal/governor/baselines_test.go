package governor

import (
	"math"
	"testing"
)

func TestFrameDVSTracksPredictedDemand(t *testing.T) {
	g := NewFrameDVS()
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(Observation{Epoch: -1})
	// Steady demand of 30 Mcycles per 40 ms frame needs 750 MHz; with a
	// 10% margin the budget is 36 ms -> 833 MHz -> ceil to 900 MHz.
	var idx int
	for i := 0; i < 10; i++ {
		obs := obsAt(i, idx, 0.7, 0.04)
		for c := range obs.Cycles {
			obs.Cycles[c] = 30e6
		}
		idx = g.Decide(obs)
	}
	if got := ctx.Table[idx].FreqMHz; got != 900 {
		t.Fatalf("framedvs settled at %d MHz, want 900", got)
	}
}

func TestFrameDVSFollowsStep(t *testing.T) {
	g := NewFrameDVS()
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(Observation{Epoch: -1})
	feed := func(epoch int, cycles uint64) int {
		obs := obsAt(epoch, 5, 0.5, 0.04)
		for c := range obs.Cycles {
			obs.Cycles[c] = cycles
		}
		return g.Decide(obs)
	}
	for i := 0; i < 20; i++ {
		feed(i, 20e6)
	}
	low := feed(20, 20e6)
	// Demand doubles; EWMA(0.6) reaches ~95% of the new level in 4 frames.
	var idx int
	for i := 21; i < 28; i++ {
		idx = feed(i, 40e6)
	}
	if !(idx > low) {
		t.Fatalf("framedvs did not scale up after step: %d -> %d", low, idx)
	}
	// 40 Mcycles over 36 ms budget -> 1111 MHz -> 1200 MHz.
	if got := testCtx(1).Table[idx].FreqMHz; got < 1100 || got > 1300 {
		t.Fatalf("post-step choice %d MHz, want ≈1200", got)
	}
}

func TestFrameDVSOverheadTiny(t *testing.T) {
	g := NewFrameDVS()
	if g.DecisionOverheadS() <= 0 || g.DecisionOverheadS() > 50e-6 {
		t.Fatalf("framedvs overhead %v; want small but positive", g.DecisionOverheadS())
	}
}

func TestSchedutilProportionalWithHeadroom(t *testing.T) {
	g := NewSchedutil()
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(Observation{Epoch: -1})
	// 40% util at fmax: target = 1.25*0.4*2000 = 1000 MHz.
	idx := g.Decide(obsAt(0, 18, 0.40, 0.04))
	if got := ctx.Table[idx].FreqMHz; got != 1000 {
		t.Fatalf("schedutil chose %d MHz, want 1000", got)
	}
}

func TestSchedutilRateLimitsDownScaling(t *testing.T) {
	g := NewSchedutil()
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(Observation{Epoch: -1})
	high := g.Decide(obsAt(0, 0, 0.9, 0.04)) // up immediately
	if high == 0 {
		t.Fatal("did not scale up")
	}
	// One quiet epoch: held (rate limit 2).
	if got := g.Decide(obsAt(1, high, 0.2, 0.04)); got != high {
		t.Fatalf("down-scaled after one quiet epoch: %d", got)
	}
	// Second quiet epoch: released.
	if got := g.Decide(obsAt(2, high, 0.2, 0.04)); got >= high {
		t.Fatalf("rate limit never released: %d", got)
	}
}

func TestPIDReachesSetpointOnSteadyDemand(t *testing.T) {
	g := NewPID()
	ctx := testCtx(1)
	g.Reset(ctx)
	idx := g.Decide(Observation{Epoch: -1})
	const cycles = 30e6 // needs 750 MHz at 40 ms
	var slack float64
	for i := 0; i < 200; i++ {
		f := ctx.Table[idx].FreqHz()
		exec := cycles/f + g.DecisionOverheadS()
		obs := obsAt(i, idx, math.Min(1, exec/0.04), 0.04)
		obs.ExecTimeS = exec
		idx = g.Decide(obs)
		slack = (0.04 - exec) / 0.04
	}
	if math.Abs(slack-g.Setpoint) > 0.12 {
		t.Fatalf("PID steady slack %v, want near setpoint %v", slack, g.Setpoint)
	}
	if mhz := ctx.Table[idx].FreqMHz; mhz < 800 || mhz > 1100 {
		t.Fatalf("PID settled at %d MHz for a 750 MHz demand", mhz)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	g := NewPID()
	ctx := testCtx(1)
	g.Reset(ctx)
	g.Decide(Observation{Epoch: -1})
	// Long saturation at an unmeetable demand must not wind the integral
	// beyond its clamp...
	for i := 0; i < 100; i++ {
		obs := obsAt(i, 18, 1.0, 0.04)
		obs.ExecTimeS = 0.120 // always missing
		g.Decide(obs)
	}
	if g.integral > g.IntegralClamp+1e-9 {
		t.Fatalf("integral wound up to %v", g.integral)
	}
	// ...and recovery must not take pathologically long once demand drops.
	var idx int
	for i := 100; i < 140; i++ {
		obs := obsAt(i, idx, 0.2, 0.04)
		obs.ExecTimeS = 0.008 // huge slack now
		idx = g.Decide(obs)
	}
	if mhz := ctx.Table[idx].FreqMHz; mhz > 800 {
		t.Fatalf("PID stuck high after demand drop: %d MHz", mhz)
	}
}

func TestThermalCapThrottlesAndRecovers(t *testing.T) {
	g := NewThermalCap(NewPerformance())
	ctx := testCtx(1)
	g.Reset(ctx)
	max := ctx.Table.MaxIdx()
	if got := g.Decide(Observation{Epoch: -1}); got != max {
		t.Fatalf("first decision %d", got)
	}
	// Hot epochs pull the ceiling down one step each.
	hot := obsAt(0, max, 0.9, 0.04)
	hot.TempC = 95
	for i := 0; i < 5; i++ {
		hot.Epoch = i
		g.Decide(hot)
	}
	if got := g.Ceiling(); got != max-5 {
		t.Fatalf("ceiling = %d after 5 hot epochs, want %d", got, max-5)
	}
	if g.ThrottleEvents() == 0 {
		t.Fatal("no throttle events recorded")
	}
	// Within the hysteresis band the ceiling holds.
	warm := obsAt(5, max, 0.9, 0.04)
	warm.TempC = 83
	g.Decide(warm)
	if got := g.Ceiling(); got != max-5 {
		t.Fatalf("ceiling moved inside hysteresis band: %d", got)
	}
	// Cool epochs recover one step each.
	cool := obsAt(6, max, 0.9, 0.04)
	cool.TempC = 60
	for i := 0; i < 5; i++ {
		cool.Epoch = 6 + i
		g.Decide(cool)
	}
	if got := g.Ceiling(); got != max {
		t.Fatalf("ceiling did not recover: %d", got)
	}
}

// A power-only cap (TripC = +Inf) throttles on sensed power, holds
// inside the recovery hysteresis, and recovers once power clears it —
// the per-session budget serve mode exposes as thermal_cap_mw.
func TestThermalCapPowerBudget(t *testing.T) {
	g := &ThermalCap{Inner: NewPerformance(), TripC: math.Inf(1), PowerCapW: 2.0}
	ctx := testCtx(1)
	g.Reset(ctx)
	max := ctx.Table.MaxIdx()

	// Over-budget epochs pull the ceiling down one step each.
	over := obsAt(0, max, 0.9, 0.04)
	over.PowerW = 2.5
	for i := 0; i < 4; i++ {
		over.Epoch = i
		g.Decide(over)
	}
	if got := g.Ceiling(); got != max-4 {
		t.Fatalf("ceiling = %d after 4 over-budget epochs, want %d", got, max-4)
	}
	if g.ThrottleEvents() == 0 {
		t.Fatal("no throttle events recorded")
	}
	// Just under the cap but above the recovery fraction: the ceiling holds.
	near := obsAt(4, max, 0.9, 0.04)
	near.PowerW = 1.97
	g.Decide(near)
	if got := g.Ceiling(); got != max-4 {
		t.Fatalf("ceiling moved inside power hysteresis band: %d", got)
	}
	// Clearly under budget: one step of recovery per epoch.
	low := obsAt(5, max, 0.9, 0.04)
	low.PowerW = 1.0
	for i := 0; i < 4; i++ {
		low.Epoch = 5 + i
		g.Decide(low)
	}
	if got := g.Ceiling(); got != max {
		t.Fatalf("ceiling did not recover: %d", got)
	}

	// With both signals configured, either one throttles.
	both := NewThermalCap(NewPerformance())
	both.PowerCapW = 2.0
	both.Reset(ctx)
	hot := obsAt(0, max, 0.9, 0.04)
	hot.TempC = 95 // over temperature, under power
	hot.PowerW = 1.0
	both.Decide(hot)
	if got := both.Ceiling(); got != max-1 {
		t.Fatalf("temperature trip ignored with power cap set: ceiling %d", got)
	}
}

func TestThermalCapForwardsOverhead(t *testing.T) {
	inner := NewMLDTM()
	g := NewThermalCap(inner)
	if g.DecisionOverheadS() != inner.DecisionOverheadS() {
		t.Fatal("overhead not forwarded")
	}
	plain := NewThermalCap(NewPerformance())
	if plain.DecisionOverheadS() != 0 {
		t.Fatal("non-modelling inner governor must cost zero")
	}
	if g.Name() != "mldtm+thermal" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestThermalCapNilInnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil inner must panic")
		}
	}()
	NewThermalCap(nil)
}

func TestNewGovernorsRegistered(t *testing.T) {
	for _, name := range []string{"framedvs", "schedutil", "pid"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
}
