package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"qgov/internal/stats"
	"qgov/internal/workload"
)

func TestEWMARecurrence(t *testing.T) {
	e := NewEWMA(0.6)
	e.Observe(100) // primes: pred = 100
	if got := e.Predict(); got != 100 {
		t.Fatalf("after priming: %v, want 100", got)
	}
	e.Observe(200) // 0.6*200 + 0.4*100 = 160
	if got := e.Predict(); math.Abs(got-160) > 1e-12 {
		t.Fatalf("after second observation: %v, want 160", got)
	}
	e.Observe(100) // 0.6*100 + 0.4*160 = 124
	if got := e.Predict(); math.Abs(got-124) > 1e-12 {
		t.Fatalf("after third observation: %v, want 124", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.6)
	for i := 0; i < 50; i++ {
		e.Observe(42)
	}
	if got := e.Predict(); math.Abs(got-42) > 1e-9 {
		t.Fatalf("EWMA did not converge to constant input: %v", got)
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.6)
	e.Observe(100)
	e.Reset()
	if e.Predict() != 0 {
		t.Fatal("Reset did not clear the prediction")
	}
	e.Observe(77) // must re-prime
	if e.Predict() != 77 {
		t.Fatal("Reset did not clear the priming flag")
	}
}

func TestEWMAPanicsOnBadGamma(t *testing.T) {
	for _, g := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) must panic", g)
				}
			}()
			NewEWMA(g)
		}()
	}
	NewEWMA(1) // γ=1 is legal: degenerates to last-value
}

func TestLastValue(t *testing.T) {
	l := NewLastValue()
	if l.Predict() != 0 {
		t.Fatal("initial prediction not 0")
	}
	l.Observe(5)
	l.Observe(9)
	if l.Predict() != 9 {
		t.Fatalf("Predict = %v, want 9", l.Predict())
	}
	l.Reset()
	if l.Predict() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Predict() != 0 {
		t.Fatal("initial prediction not 0")
	}
	m.Observe(3)
	if m.Predict() != 3 {
		t.Fatalf("partial window mean = %v, want 3", m.Predict())
	}
	m.Observe(6)
	m.Observe(9)
	if m.Predict() != 6 {
		t.Fatalf("full window mean = %v, want 6", m.Predict())
	}
	m.Observe(12) // window slides to {6,9,12}
	if m.Predict() != 9 {
		t.Fatalf("sliding mean = %v, want 9", m.Predict())
	}
}

func TestHoltTracksRamp(t *testing.T) {
	// On a pure ramp, Holt should extrapolate almost exactly while EWMA
	// lags — the motivating difference between trend-aware and plain
	// smoothing.
	ramp := make([]float64, 60)
	for i := range ramp {
		ramp[i] = 1000 + 50*float64(i)
	}
	h := Evaluate(NewHolt(0.5, 0.3), ramp)
	e := Evaluate(NewEWMA(0.6), ramp)
	hp, ha := Split(h[10:])
	ep, ea := Split(e[10:])
	holtErr := stats.MAPE(hp, ha)
	ewmaErr := stats.MAPE(ep, ea)
	if !(holtErr < ewmaErr) {
		t.Fatalf("Holt MAPE %v not below EWMA MAPE %v on a ramp", holtErr, ewmaErr)
	}
}

func TestNLMSLearnsConstantSignal(t *testing.T) {
	n := NewNLMS(4, 0.5)
	for i := 0; i < 100; i++ {
		n.Observe(1000)
	}
	if got := n.Predict(); math.Abs(got-1000) > 1 {
		t.Fatalf("NLMS on constant signal predicts %v", got)
	}
}

func TestNLMSNeverPredictsNegative(t *testing.T) {
	n := NewNLMS(4, 0.9)
	inputs := []float64{100, 5000, 10, 8000, 3, 9000, 1}
	for _, x := range inputs {
		if n.Predict() < 0 {
			t.Fatal("negative workload forecast")
		}
		n.Observe(x)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewMovingAverage(0) },
		func() { NewHolt(0, 0.5) },
		func() { NewHolt(0.5, 2) },
		func() { NewNLMS(0, 0.5) },
		func() { NewNLMS(4, 0) },
		func() { NewNLMS(4, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor case %d must panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"ewma", "last", "ma", "holt", "nlms"} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
	}
	if _, err := New("oracle"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestEvaluateAlignment(t *testing.T) {
	series := []float64{10, 20, 30}
	recs := Evaluate(NewLastValue(), series)
	// Record i holds the forecast made before seeing series[i].
	want := []Record{{0, 10}, {10, 20}, {20, 30}}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestEWMAOnPaperWorkloadMispredictionBand(t *testing.T) {
	// Sanity-check the Fig. 3 regime: EWMA(0.6) on the MPEG4 trace should
	// produce single-digit-percent average misprediction after warm-up,
	// in the band the paper reports (≈3–8 %).
	tr := workload.MPEG4SVGA24(1, 240)
	recs := Evaluate(NewEWMA(0.6), tr.MaxPerFrame())
	pred, actual := Split(recs[100:])
	m := stats.MAPEOfMean(pred, actual)
	if m < 0.005 || m > 0.15 {
		t.Fatalf("post-warmup misprediction = %.1f%%, want single digits", m*100)
	}
}

// Property: EWMA prediction always lies within the convex hull of the
// primed value and all subsequent observations.
func TestEWMAHullProperty(t *testing.T) {
	f := func(raw []uint32, rawGamma uint8) bool {
		if len(raw) == 0 {
			return true
		}
		gamma := (float64(rawGamma%99) + 1) / 100
		e := NewEWMA(gamma)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r % 1e9)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			e.Observe(x)
			p := e.Predict()
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any gamma, feeding a constant series keeps the prediction
// exactly at that constant (fixed point).
func TestEWMAFixedPointProperty(t *testing.T) {
	f := func(rawV uint32, rawGamma uint8, rawN uint8) bool {
		gamma := (float64(rawGamma%99) + 1) / 100
		v := float64(rawV)
		e := NewEWMA(gamma)
		for i := 0; i < int(rawN%50)+1; i++ {
			e.Observe(v)
		}
		return math.Abs(e.Predict()-v) < 1e-9*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
