package serve_test

import (
	"net/http"
	"testing"

	"qgov/internal/serve"
)

type learningMetrics struct {
	Epochs            int64    `json:"epochs"`
	Explorations      int      `json:"explorations"`
	ConvergedAt       int      `json:"converged_at"`
	Epsilon           *float64 `json:"epsilon"`
	VisitTotal        *int     `json:"visit_total"`
	ConvergedFraction *float64 `json:"converged_fraction"`
}

type latencyMetrics struct {
	Count      int              `json:"count"`
	LoUS       float64          `json:"lo_us"`
	HiUS       float64          `json:"hi_us"`
	BinWidthUS float64          `json:"bin_width_us"`
	Scale      string           `json:"scale"`
	EdgesUS    []float64        `json:"edges_us"`
	Bins       []int            `json:"bins"`
	Underflow  int              `json:"underflow"`
	Overflow   int              `json:"overflow"`
	P99US      *float64         `json:"p99_us"`
	P999US     *float64         `json:"p999_us"`
	Learning   *learningMetrics `json:"learning"`
}

type metricsResponse struct {
	Decisions int64                     `json:"decisions"`
	Sessions  map[string]latencyMetrics `json:"sessions"`
}

// After a known decision sequence, /v1/metrics must account for every
// decision exactly once in that session's latency histogram: the bin
// counts (plus overflow) sum to the number of decisions served, nothing
// lands below the range, and the histogram geometry is the advertised
// log-width grid over [1 µs, 1 s] with explicit bin edges.
func TestMetricsLatencyHistogram(t *testing.T) {
	const decisions = 37
	h := newTestServer(t, serve.Options{})
	if st := h.post("/v1/sessions", map[string]any{"id": "m0", "governor": "rtm", "seed": 3}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	// A second, never-decided session must report an all-zero histogram.
	if st := h.post("/v1/sessions", map[string]any{"id": "idle", "governor": "rtm"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}

	obs := steadyObs()
	for i := 0; i < decisions; i++ {
		obs.Epoch = i
		var resp struct {
			Decisions []decision `json:"decisions"`
		}
		if st := h.post("/v1/decide", map[string]any{
			"requests": []decideItem{{Session: "m0", Obs: obsJSON{
				Epoch: obs.Epoch, Cycles: obs.Cycles, Util: obs.Util,
				ExecTimeS: obs.ExecTimeS, PeriodS: obs.PeriodS, WallTimeS: obs.WallTimeS,
				PowerW: obs.PowerW, TempC: obs.TempC, OPPIdx: obs.OPPIdx,
			}}},
		}, &resp); st != http.StatusOK {
			t.Fatalf("decide %d returned %d", i, st)
		}
		if resp.Decisions[0].Error != "" {
			t.Fatal(resp.Decisions[0].Error)
		}
	}

	var m metricsResponse
	if st := h.get("/v1/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics returned %d", st)
	}
	if m.Decisions != decisions {
		t.Errorf("server counted %d decisions, want %d", m.Decisions, decisions)
	}

	lat, ok := m.Sessions["m0"]
	if !ok {
		t.Fatalf("metrics missing session m0: %+v", m.Sessions)
	}
	if lat.LoUS != 0.1 || lat.HiUS != 1e6 || len(lat.Bins) != 70 {
		t.Errorf("histogram geometry %g..%g × %d bins, want 0.1..1e6 × 70",
			lat.LoUS, lat.HiUS, len(lat.Bins))
	}
	if lat.Scale != "log" {
		t.Errorf("histogram scale %q, want \"log\"", lat.Scale)
	}
	if lat.BinWidthUS != 0 {
		t.Errorf("log histogram advertises fixed bin width %g", lat.BinWidthUS)
	}
	if len(lat.EdgesUS) != len(lat.Bins) {
		t.Errorf("%d bin edges for %d bins", len(lat.EdgesUS), len(lat.Bins))
	} else {
		if got := lat.EdgesUS[len(lat.EdgesUS)-1]; got != lat.HiUS {
			t.Errorf("last edge %g, want hi_us %g", got, lat.HiUS)
		}
		for i := 1; i < len(lat.EdgesUS); i++ {
			if lat.EdgesUS[i] <= lat.EdgesUS[i-1] {
				t.Errorf("edges not increasing at %d: %g <= %g", i, lat.EdgesUS[i], lat.EdgesUS[i-1])
			}
		}
	}
	if lat.Count != decisions {
		t.Errorf("histogram holds %d samples, want %d", lat.Count, decisions)
	}
	// No real decision completes under 100 ns, and the p99 estimate must
	// be a real (finite, in-range) number unless the tail escaped.
	if lat.Underflow != 0 {
		t.Errorf("%d decisions below the 100 ns floor", lat.Underflow)
	}
	if lat.Overflow == 0 {
		if lat.P99US == nil || *lat.P99US <= 0 || *lat.P99US > lat.HiUS {
			t.Errorf("p99_us = %v, want finite within (0, hi]", lat.P99US)
		}
	}
	sum := lat.Underflow + lat.Overflow
	for _, c := range lat.Bins {
		sum += c
	}
	if sum != decisions {
		t.Errorf("bins account for %d decisions, want %d", sum, decisions)
	}

	idle, ok := m.Sessions["idle"]
	if !ok {
		t.Fatal("metrics missing the idle session")
	}
	if idle.Count != 0 {
		t.Errorf("idle session reports %d samples", idle.Count)
	}

	// Exploration/convergence counters ride next to the histogram for
	// learning governors. The RTM holds ε at ε₀ for its first 110
	// epochs, accumulates one table visit per decision, and cannot have
	// a converged policy 37 epochs in.
	lrn := lat.Learning
	if lrn == nil {
		t.Fatal("metrics missing the learning block for an RTM session")
	}
	if lrn.Epochs != decisions {
		t.Errorf("learning epochs = %d, want %d", lrn.Epochs, decisions)
	}
	if lrn.Epsilon == nil || *lrn.Epsilon <= 0 || *lrn.Epsilon > 1 {
		t.Errorf("epsilon = %v, want in (0, 1]", lrn.Epsilon)
	}
	if lrn.VisitTotal == nil || *lrn.VisitTotal != decisions {
		t.Errorf("visit_total = %v, want %d", lrn.VisitTotal, decisions)
	}
	if lrn.ConvergedFraction == nil || *lrn.ConvergedFraction < 0 || *lrn.ConvergedFraction > 1 {
		t.Errorf("converged_fraction = %v, want in [0, 1]", lrn.ConvergedFraction)
	}
	if lrn.ConvergedAt < -1 || lrn.ConvergedAt >= decisions {
		t.Errorf("converged_at = %d after %d epochs", lrn.ConvergedAt, decisions)
	}
	if lrn.Explorations < 0 {
		t.Errorf("explorations = %d", lrn.Explorations)
	}
	if idle.Learning == nil || idle.Learning.Epochs != 0 {
		t.Errorf("idle session learning block: %+v", idle.Learning)
	}
}

// A non-learning governor carries no learning block.
func TestMetricsOmitsLearningForNonLearners(t *testing.T) {
	h := newTestServer(t, serve.Options{})
	if st := h.post("/v1/sessions", map[string]any{"id": "od", "governor": "ondemand"}, nil); st != http.StatusCreated {
		t.Fatalf("create returned %d", st)
	}
	var m metricsResponse
	if st := h.get("/v1/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics returned %d", st)
	}
	if m.Sessions["od"].Learning != nil {
		t.Errorf("ondemand session reports learning counters: %+v", m.Sessions["od"].Learning)
	}
}
