package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qgov/internal/governor"
	"qgov/internal/serve"
	"qgov/internal/serve/client"
)

// benchBatch builds one batched decide body over the given session ids,
// with a plausible steady-state observation per session.
func benchBatch(ids []string) []byte {
	items := make([]decideItem, len(ids))
	for i, id := range ids {
		items[i] = decideItem{Session: id, Obs: obsJSON{
			Epoch:     1,
			Cycles:    []uint64{30e6, 31e6, 29e6, 30e6},
			Util:      []float64{0.6, 0.5, 0.7, 0.6},
			ExecTimeS: 0.025,
			PeriodS:   0.040,
			WallTimeS: 0.040,
			PowerW:    2,
			TempC:     50,
			OPPIdx:    10,
		}}
	}
	raw, err := json.Marshal(map[string]any{"requests": items})
	if err != nil {
		panic(err)
	}
	return raw
}

func benchServer(tb testing.TB, sessions int) (*serve.Server, *httptest.Server, []string, func()) {
	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%d", i)
		body, _ := json.Marshal(map[string]any{"id": ids[i], "governor": "rtm", "seed": i + 1})
		resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			tb.Fatalf("create returned %d", resp.StatusCode)
		}
	}
	return srv, ts, ids, func() {
		ts.Close()
		_ = srv.Close()
	}
}

func postBatch(tb testing.TB, ts *httptest.Server, body []byte) {
	resp, err := ts.Client().Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	var out struct {
		Decisions []decision `json:"decisions"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		tb.Fatal(err)
	}
	for _, d := range out.Decisions {
		if d.Error != "" {
			tb.Fatal(d.Error)
		}
	}
}

// BenchmarkServeDecideThroughput measures the serving hot path end to end
// — HTTP transport, JSON decode, per-session locking, governor decision —
// as batched decisions/second over 64 concurrent RTM sessions. This is
// the number the ≥10k decisions/sec acceptance bar reads.
func BenchmarkServeDecideThroughput(b *testing.B) {
	_, ts, ids, stop := benchServer(b, 64)
	defer stop()
	body := benchBatch(ids)
	postBatch(b, ts, body) // warm the path before timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postBatch(b, ts, body)
	}
	b.StopTimer()
	total := float64(len(ids)) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(len(ids)), "batch")
}

// BenchmarkBinaryDecideThroughput measures the transport fast path end
// to end — persistent TCP, binary frames, connection-level batching,
// governor decision — as batched decisions/second over 256 concurrent
// RTM sessions on one multiplexed connection. The ≥500k decisions/s
// acceptance bar (4× the HTTP+JSON path of BENCH_2.json) reads this
// number.
func BenchmarkBinaryDecideThroughput(b *testing.B) {
	const sessions = 256
	srv, _, ids, stop := benchServer(b, sessions)
	defer stop()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	tcpSrv := serve.NewTCP(srv, lis)
	go func() { _ = tcpSrv.Serve() }()
	defer tcpSrv.Close()

	cl, err := client.Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	obs := make([]governor.Observation, sessions)
	out := make([]client.Decision, sessions)
	for i := range obs {
		obs[i] = steadyObs()
	}
	check := func() {
		if err := cl.DecideBatch(ids, obs, out); err != nil {
			b.Fatal(err)
		}
		for _, d := range out {
			if d.Err != "" {
				b.Fatal(d.Err)
			}
		}
	}
	check() // warm the path (and the connection) before timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.DecideBatch(ids, obs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	check() // errors would have surfaced per entry; spot-check once more
	total := float64(sessions) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "decisions/s")
	b.ReportMetric(float64(sessions), "batch")
}

// The throughput floor as a plain test, far below the benchmark's real
// figure so it holds even under -race on loaded CI machines: half a
// second of hammering must clear 1k decisions/sec.
func TestServeThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput floor is timing-dependent")
	}
	_, ts, ids, stop := benchServer(t, 64)
	defer stop()
	body := benchBatch(ids)
	deadline := time.Now().Add(500 * time.Millisecond)
	start := time.Now()
	var decisions int
	for time.Now().Before(deadline) {
		postBatch(t, ts, body)
		decisions += len(ids)
	}
	rate := float64(decisions) / time.Since(start).Seconds()
	t.Logf("sustained %.0f decisions/s", rate)
	if rate < 1000 {
		t.Errorf("sustained only %.0f decisions/s, floor is 1000", rate)
	}
}
