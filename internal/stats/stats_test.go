package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses the tail.
	xs := make([]float64, 1001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-3
	}
	want := 1e8 + 1.0
	if got := Sum(xs); !almostEqual(got, want, 1e-6) {
		t.Fatalf("Sum = %.9f, want %.9f", got, want)
	}
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{nil, math.NaN()},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic data set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance([]float64{1}); !math.IsNaN(got) {
		t.Fatalf("Variance of 1 sample = %v, want NaN", got)
	}
	if got := Variance(nil); !math.IsNaN(got) {
		t.Fatalf("Variance of empty = %v, want NaN", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if got := Min(xs); got != -9 {
		t.Errorf("Min = %v, want -9", got)
	}
	if got := Max(xs); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty must be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{25, 2},
		{50, 3},
		{75, 4},
		{100, 5},
		{-5, 1},  // clamped
		{150, 5}, // clamped
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(xs, 10); !almostEqual(got, 1.4, 1e-12) {
		t.Errorf("Percentile(10) = %v, want 1.4 (interpolated)", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yUp := []float64{2, 4, 6, 8, 10}
	yDown := []float64{10, 8, 6, 4, 2}
	if got := Correlation(x, yUp); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Correlation(up) = %v, want 1", got)
	}
	if got := Correlation(x, yDown); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Correlation(down) = %v, want -1", got)
	}
	flat := []float64{7, 7, 7, 7, 7}
	if got := Correlation(x, flat); !math.IsNaN(got) {
		t.Errorf("Correlation(flat) = %v, want NaN", got)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", out, want)
		}
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Fatal("Normalize by zero must error")
	}
	if _, err := Normalize([]float64{1}, math.NaN()); err == nil {
		t.Fatal("Normalize by NaN must error")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp with lo > hi must panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-1, 1, -3, 3}); got != 2 {
		t.Fatalf("MeanAbs = %v, want 2", got)
	}
	if !math.IsNaN(MeanAbs(nil)) {
		t.Fatal("MeanAbs(empty) must be NaN")
	}
}
