package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"qgov/internal/sim"
	"qgov/internal/workload"
)

// TableIIRow is one application's row of Table II.
type TableIIRow struct {
	App       string
	UPD       float64 // mean explorations, uniform-exploration RL [21]
	EPD       float64 // mean explorations, the proposed EPD approach
	PaperUPD  int     // the paper's count for [21]
	PaperEPD  int     // the paper's count for the proposed approach
	Reduction float64 // 1 − EPD/UPD
	ConvUPD   float64 // mean convergence epoch, for context
	ConvEPD   float64
}

// TableIIResult reproduces "Comparative evaluation of the number of
// explorations": how many exploratory decisions each learner takes before
// settling, for MPEG4 at 30 fps, H.264 at 15 fps and the FFT at 32 fps.
// The proposed EPD exploration needs materially fewer than uniform
// exploration, and the FFT — the least-varying workload — needs the
// fewest of all.
type TableIIResult struct {
	Frames int
	Seeds  int
	Rows   []TableIIRow
}

// TableII runs the experiment. frames <= 0 selects 1000 frames per app.
func TableII(seeds []int64, frames int) *TableIIResult {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	if frames <= 0 {
		frames = 1000
	}
	apps := []struct {
		name     string
		paperUPD int
		paperEPD int
		gen      func(seed int64) workload.Trace
	}{
		{"mpeg4-30fps", 144, 83, func(s int64) workload.Trace { return workload.MPEG4At30(s, frames) }},
		{"h264-15fps", 149, 90, func(s int64) workload.Trace { return workload.H264At15(s, frames) }},
		{"fft-32fps", 119, 74, func(s int64) workload.Trace { return workload.FFT32(s, frames) }},
	}

	res := &TableIIResult{Frames: frames, Seeds: len(seeds)}
	for _, app := range apps {
		var updSum, epdSum, convU, convE float64
		var convUN, convEN int
		for _, seed := range seeds {
			tr := app.gen(seed)
			jobs := []sim.Job{
				{Name: "upd", Build: func() sim.Config {
					return sim.Config{Trace: tr, Governor: newUPDRL(tr), Seed: seed}
				}},
				{Name: "epd", Build: func() sim.Config {
					return sim.Config{Trace: tr, Governor: newRTM(tr), Seed: seed}
				}},
			}
			results := sim.RunAll(jobs)
			updSum += float64(results[0].ExplorationsToConv)
			epdSum += float64(results[1].ExplorationsToConv)
			if results[0].ConvergedAt >= 0 {
				convU += float64(results[0].ConvergedAt)
				convUN++
			}
			if results[1].ConvergedAt >= 0 {
				convE += float64(results[1].ConvergedAt)
				convEN++
			}
		}
		n := float64(len(seeds))
		row := TableIIRow{
			App:      app.name,
			UPD:      updSum / n,
			EPD:      epdSum / n,
			PaperUPD: app.paperUPD,
			PaperEPD: app.paperEPD,
			ConvUPD:  math.NaN(),
			ConvEPD:  math.NaN(),
		}
		if row.UPD > 0 {
			row.Reduction = 1 - row.EPD/row.UPD
		}
		if convUN > 0 {
			row.ConvUPD = convU / float64(convUN)
		}
		if convEN > 0 {
			row.ConvEPD = convE / float64(convEN)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Row returns the named row, or nil.
func (t *TableIIResult) Row(app string) *TableIIRow {
	for i := range t.Rows {
		if t.Rows[i].App == app {
			return &t.Rows[i]
		}
	}
	return nil
}

// Render writes the table in the paper's layout.
func (t *TableIIResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table II — number of explorations (%d frames, %d seeds)\n", t.Frames, t.Seeds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tUPD [21]\tEPD (ours)\tReduction\tPaper UPD\tPaper EPD")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f%%\t%d\t%d\n",
			r.App, r.UPD, r.EPD, r.Reduction*100, r.PaperUPD, r.PaperEPD)
	}
	return tw.Flush()
}
