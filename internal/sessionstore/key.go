package sessionstore

import "regexp"

// IDPattern is the shape of a session id: filename-safe, bounded —
// ids become checkpoint file names and blob-store key segments.
var IDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// ValidID is the one copy of the id rule every layer validates through
// (the serving layer's session creates, the registry's blob-key
// segments): IDPattern, and not dot-led. Excluding the leading dot
// rules out the path-specials "." and ".." and, with temp files being
// dot-prefixed by convention (sessionstore ".state-", registry
// ".blob-"), guarantees no accepted id can ever collide with an
// in-flight write or be swept as a crashed writer's leavings.
func ValidID(s string) bool {
	return IDPattern.MatchString(s) && s[0] != '.'
}
