package sim

import (
	"math"
	"runtime"
	"sync"
)

// Job names one parameterised run inside a sweep. Build must return a
// fresh Config — governors and clusters are stateful, so sharing one
// instance across concurrent runs would race.
type Job struct {
	Name  string
	Build func() Config
}

// RunAll executes the jobs concurrently (bounded by GOMAXPROCS) and
// returns results in job order. Each run is internally deterministic:
// concurrency only reorders wall-clock execution, never outcomes.
func RunAll(jobs []Job) []*Result {
	results := make([]*Result, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = Run(job.Build())
		}(i, job)
	}
	wg.Wait()
	return results
}

// SeedSweep runs the same configuration across several seeds and returns
// the per-seed results. The build function receives the seed and must
// construct everything fresh (see Job).
func SeedSweep(build func(seed int64) Config, seeds []int64) []*Result {
	jobs := make([]Job, len(seeds))
	for i, s := range seeds {
		s := s
		jobs[i] = Job{Build: func() Config { return build(s) }}
	}
	return RunAll(jobs)
}

// Summary is the cross-seed aggregate of a sweep.
type Summary struct {
	Runs           int
	MeanEnergyJ    float64
	StdEnergyJ     float64
	MeanNormPerf   float64
	MeanMissRate   float64
	MeanExplore    float64 // NaN when the governor is not a learner
	MeanConvergeAt float64 // NaN when never converged / not a learner
}

// Summarize aggregates seed-sweep results. Runs that never converged are
// excluded from MeanConvergeAt (and counted in none of the learning means
// if the governor exposes no stats).
func Summarize(results []*Result) Summary {
	var s Summary
	s.Runs = len(results)
	if s.Runs == 0 {
		return s
	}
	var eSum, eSq, pSum, mSum float64
	var expSum, convSum float64
	var expN, convN int
	for _, r := range results {
		eSum += r.EnergyJ
		eSq += r.EnergyJ * r.EnergyJ
		pSum += r.NormPerf
		mSum += r.MissRate
		if r.Explorations >= 0 {
			expSum += float64(r.Explorations)
			expN++
		}
		if r.ConvergedAt >= 0 {
			convSum += float64(r.ConvergedAt)
			convN++
		}
	}
	n := float64(s.Runs)
	s.MeanEnergyJ = eSum / n
	variance := eSq/n - s.MeanEnergyJ*s.MeanEnergyJ
	if variance < 0 {
		variance = 0
	}
	s.StdEnergyJ = math.Sqrt(variance)
	s.MeanNormPerf = pSum / n
	s.MeanMissRate = mSum / n
	s.MeanExplore = nan()
	if expN > 0 {
		s.MeanExplore = expSum / float64(expN)
	}
	s.MeanConvergeAt = nan()
	if convN > 0 {
		s.MeanConvergeAt = convSum / float64(convN)
	}
	return s
}
