// Package sessionstore holds the serving layer's session state: a
// concurrent keyed Store for live sessions and a CheckpointStore for
// their frozen learning state.
//
// The Store interface exists because the session map is the one shared
// structure every decision crosses. A single RWMutex around one map —
// the shape serve.Server grew up with — serialises the lookup of every
// decide in the fleet through one cache line; the sharded implementation
// stripes the map across independently locked shards so lookups for
// different sessions contend only when they hash to the same stripe.
// The interface also decouples the serving layer from the map's home:
// an in-process store today, a path to an external shared store later.
//
// Values are a type parameter rather than an interface: the serve layer
// stores its unexported *session directly, with no boxing on the decide
// hot path.
package sessionstore

import (
	"sync"

	"qgov/internal/strhash"
)

// Store is a concurrent map of session id → V. Put is put-if-absent —
// session creation must atomically detect duplicates — and Delete
// returns the removed value so callers can release resources it owns.
type Store[V any] interface {
	// Get returns the value for id.
	Get(id string) (V, bool)
	// GetBytes is Get with a byte-slice key. Implementations must not
	// retain id, so callers can pass decode buffers; the sharded store
	// performs no conversion allocation (the binary transport's
	// decode→decide path stays allocation-free).
	GetBytes(id []byte) (V, bool)
	// Put stores v under id if the id is free and reports whether it did.
	Put(id string, v V) bool
	// Delete removes id, returning the removed value.
	Delete(id string) (V, bool)
	// Range calls f for every entry until f returns false. The iteration
	// order is unspecified and entries added or removed concurrently may
	// or may not be seen; f must not call back into the store.
	Range(f func(id string, v V) bool)
	// Len returns the entry count.
	Len() int
}

// defaultShards is the stripe count used when NewSharded is given zero:
// comfortably above the core count of the machines this serves on, so
// two concurrent decides rarely queue on the same stripe.
const defaultShards = 64

// Sharded is the mutex-striped in-process Store: ids hash across
// power-of-two shards, each an independently RW-locked map.
type Sharded[V any] struct {
	shards   []shard[V]
	mask     uint64
	noShrink bool
}

type shard[V any] struct {
	mu sync.RWMutex // 24 bytes
	m  map[string]V // 8 bytes
	// hiWater is the peak entry count since the map was last rebuilt. Go
	// maps never release bucket arrays, so after a delete storm a shard
	// would otherwise hold memory sized for its peak forever; Delete
	// rebuilds the map when occupancy falls far enough below this mark.
	hiWater int // 8 bytes
	// Pad the shard to 128 bytes so no two shards' hot fields share a
	// 64-byte cache line whatever the slice's base alignment —
	// neighbouring shard locks would otherwise false-share under write
	// contention.
	_ [88]byte
}

// Shrink thresholds: a shard map is rebuilt at its live size when entries
// fall below 1/shrinkFactor of the high-water mark, but only once the mark
// is at least shrinkMinHiWater — below that the retained bucket arrays are
// noise and a rebuild is pure overhead. The rebuild copies fewer than
// hiWater/shrinkFactor entries and is triggered only after at least
// (1-1/shrinkFactor)·hiWater deletes, so the cost is O(1) amortised per
// delete, paid under the same stripe lock the delete already holds.
const (
	shrinkFactor     = 4
	shrinkMinHiWater = 256
)

// NewSharded builds a store with the given shard count rounded up to a
// power of two; <= 0 selects the default.
func NewSharded[V any](shards int) *Sharded[V] {
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]V)
	}
	return s
}

func (s *Sharded[V]) shardFor(h uint64) *shard[V] {
	return &s.shards[h&s.mask]
}

// Get implements Store.
func (s *Sharded[V]) Get(id string) (V, bool) {
	sh := s.shardFor(hashString(id))
	sh.mu.RLock()
	v, ok := sh.m[id]
	sh.mu.RUnlock()
	return v, ok
}

// GetBytes implements Store. The map index compiles to a no-copy lookup.
func (s *Sharded[V]) GetBytes(id []byte) (V, bool) {
	sh := s.shardFor(hashBytes(id))
	sh.mu.RLock()
	v, ok := sh.m[string(id)]
	sh.mu.RUnlock()
	return v, ok
}

// Put implements Store (put-if-absent).
func (s *Sharded[V]) Put(id string, v V) bool {
	sh := s.shardFor(hashString(id))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.m[id]; dup {
		return false
	}
	sh.m[id] = v
	if n := len(sh.m); n > sh.hiWater {
		sh.hiWater = n
	}
	return true
}

// Delete implements Store.
func (s *Sharded[V]) Delete(id string) (V, bool) {
	sh := s.shardFor(hashString(id))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
		if !s.noShrink {
			sh.maybeShrinkLocked()
		}
	}
	return v, ok
}

// maybeShrinkLocked rebuilds the shard map at its live size when occupancy
// has fallen far below the high-water mark. Caller holds sh.mu.
func (sh *shard[V]) maybeShrinkLocked() {
	if sh.hiWater < shrinkMinHiWater || len(sh.m)*shrinkFactor >= sh.hiWater {
		return
	}
	m := make(map[string]V, len(sh.m))
	for k, v := range sh.m {
		m[k] = v
	}
	sh.m = m
	// Reset the mark to the rebuilt size so continued deletion keeps
	// shrinking instead of comparing against the old peak forever.
	sh.hiWater = len(m)
}

// DisableShrink turns off the delete-storm map rebuild, restoring the
// pre-fix behaviour where a shard retains bucket arrays sized for its peak
// occupancy. It exists so the soak harness can measure the fix against its
// baseline; call it before the store is shared between goroutines.
func (s *Sharded[V]) DisableShrink() { s.noShrink = true }

// Range implements Store: each shard is walked under its read lock, so
// f runs with one stripe locked — it must be quick and must not touch
// the store (a Put or Delete from f deadlocks on the same stripe).
func (s *Sharded[V]) Range(f func(id string, v V) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, v := range sh.m {
			if !f(id, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Len implements Store. The count is a sum of per-shard snapshots —
// exact when quiescent, approximate under concurrent mutation.
func (s *Sharded[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

func hashString(s string) uint64 { return strhash.String(s) }

func hashBytes(b []byte) uint64 { return strhash.Bytes(b) }
