// Package serve hosts governors as an online decision service — the
// deployment shape the paper's RTM has on real hardware, where the
// learning manager lives inside the OS and is fed one epoch's
// PMU/power/timing observation at a time. A serve.Server holds many
// independent sessions (one per controlled cluster, each with its own
// governor instance and learning state) behind an HTTP JSON API:
//
//	POST   /v1/sessions                 create a session (optionally
//	                                    calibrated and/or warm-started)
//	POST   /v1/decide                   batched: one observation per
//	                                    session, one OPP decision back
//	GET    /v1/sessions/{id}            session info + learning stats
//	POST   /v1/sessions/{id}/checkpoint freeze the learnt state now
//	DELETE /v1/sessions/{id}            drop the session and its
//	                                    checkpoint
//	GET    /healthz                     liveness + counters
//
// Sessions are independent and internally locked: decisions for
// different sessions run concurrently, decisions for one session
// serialise, so each session's governor sees a strict observation
// sequence and remains exactly as deterministic as under sim.Run (the
// serve tests drive a sim.Session through this API and require
// byte-identical physical aggregates). The session map itself lives in
// a sessionstore.Sharded store — mutex-striped shards, so two decides
// for different sessions rarely touch the same lock even on the lookup.
//
// Learning state is frozen through governor.Checkpointer into a
// sessionstore.CheckpointStore when one is configured: periodically, on
// demand, and one final time on Close. Sessions warm-start from their
// checkpoint on re-creation — a restarted server resumes its learnt
// policies, and a replica fleet pointing at shared checkpoint storage
// can hand sessions between members the same way. Deleting a session
// deletes its checkpoint (no more orphaned state files), and New sweeps
// the store for unrestorable state left by crashed or ancient writers.
//
// The Server also speaks the binary wire protocol (TCPServer): the
// observe→decide hot loop and, since the control frames landed, the
// whole session lifecycle, so a router can drive a replica entirely
// over one binary connection.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"qgov/internal/core"
	"qgov/internal/governor"
	"qgov/internal/platform"
	"qgov/internal/qpage"
	"qgov/internal/registry"
	"qgov/internal/scenario"
	"qgov/internal/serve/client"
	"qgov/internal/sessionstore"
	"qgov/internal/stats"
	"qgov/internal/trace"
	"qgov/internal/workload"
)

// Decision-latency histogram geometry: log-width bins over [100 ns, 1 s],
// ten bins per decade. Governor decisions are sub-microsecond to sub-10 µs
// when the server is quiet, but under session churn the tail stretches
// through scheduler delay, stripe contention and checkpoint I/O into the
// milliseconds — a fixed 50 µs range piled all of that into the overflow
// bucket and the exported quantiles silently lied. Log bins keep 26%
// relative resolution everywhere from the fast path to a 1 s stall, so
// p99-under-churn is a real number.
const (
	latHistLoUS = 0.1
	latHistHiUS = 1e6
	latHistBins = 70
)

// emptyLatHist is what metrics report for a session that has not decided
// yet: its real histogram is built lazily on the first decide (a ~2 KB
// allocation most short-lived sessions never need), so the all-zero shape
// comes from this shared instance. Read-only — never Add to it.
var emptyLatHist = stats.NewLogHistogram(latHistLoUS, latHistHiUS, latHistBins)

// latStripes is the server-wide aggregate latency histogram's stripe
// count. Every decide lands one sample in its session's assigned stripe
// (round-robin at create), so the aggregate costs one uncontended mutex
// per decision instead of one global hot lock — and the Prometheus
// scrape renders 70 buckets total, not 70 × sessions.
const latStripes = 64

// latStripe is one shard of the aggregate decision-latency histogram.
// The histogram is built lazily like a session's: an idle server carries
// 64 nil pointers, not 64 × 2 KB of zero bins.
type latStripe struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// add records one decision latency (µs) into the stripe.
func (st *latStripe) add(us float64) {
	st.mu.Lock()
	if st.h == nil {
		st.h = stats.NewLogHistogram(latHistLoUS, latHistHiUS, latHistBins)
	}
	st.h.Add(us)
	st.mu.Unlock()
}

// Options configures a Server. The zero value serves on the paper's
// defaults: platform "a15", 25 fps decision epochs, no checkpointing.
type Options struct {
	// DefaultPlatform names the scenario platform variant used when a
	// session create omits one. Empty selects "a15".
	DefaultPlatform string
	// DefaultPeriodS is the decision-epoch deadline used when a session
	// create omits one. Zero selects 0.040 s (25 fps).
	DefaultPeriodS float64
	// Checkpoints, when non-nil, is where session learning state is
	// frozen and looked up again when a session of the same id is
	// re-created. Replicas sharing one store can hand sessions off.
	Checkpoints sessionstore.CheckpointStore
	// CheckpointDir is the convenience form of Checkpoints: a non-empty
	// directory builds a sessionstore.Dir when Checkpoints is nil. New
	// panics if the directory cannot be created.
	CheckpointDir string
	// CheckpointEvery is the period of the background checkpoint sweep;
	// <= 0 disables the sweep (explicit /checkpoint calls and the final
	// sweep on Close still run when a checkpoint store is configured).
	CheckpointEvery time.Duration
	// Registry, when non-nil, resolves warm_start references on session
	// create: "auto" picks the nearest published manifest for the
	// session's governor/workload/platform fingerprint (exact match
	// first, then same-platform/different-workload — the cross-workload
	// transfer fallback), and a manifest id selects exactly that
	// checkpoint. Replicas sharing one registry warm-start from the
	// fleet's pooled training.
	Registry *registry.Registry
	// CompactionFilter, when non-nil, restricts the startup compaction
	// sweep to checkpoint ids it returns true for. A routed replica sets
	// it to its own consistent-hash shards so a starting member reads
	// only the fraction of a fleet-sized shared store it owns instead of
	// every file in it.
	CompactionFilter func(id string) bool
	// StoreShards overrides the session store's stripe count; <= 0 uses
	// the sessionstore default.
	StoreShards int
	// CheckpointEverySession restores the pre-fix sweep behaviour: the
	// periodic checkpoint loop re-serialises and re-writes every session
	// each interval even when nothing decided since the last write. It
	// exists so the soak harness can measure the write-amplification fix
	// against its baseline; leave it false in production.
	CheckpointEverySession bool
	// DisableStoreShrink turns off the session store's delete-storm map
	// rebuild (sessionstore.Sharded.DisableShrink) — the other soak
	// baseline toggle; leave it false in production.
	DisableStoreShrink bool
	// Log receives operational and slow-request log records; nil
	// discards them.
	Log *slog.Logger
	// Tracer samples decide batches into the server's span ring (see
	// internal/trace). Nil builds a default tracer with sampling off —
	// propagated trace ids from a router still record, and /v1/trace
	// serves the ring, but the server originates no traces of its own.
	Tracer *trace.Tracer
}

// Server is the concurrent session store behind the HTTP API.
type Server struct {
	opt    Options
	ckpt   sessionstore.CheckpointStore
	log    *slog.Logger
	tracer *trace.Tracer

	sessions sessionstore.Store[*session]
	// qpool is the process-wide content-interned Q-table page pool:
	// every learning governor on this server builds its value tables
	// through it, so identical starting state (cold tables, shared
	// warm-start manifests) is stored once and diverges copy-on-write.
	qpool  *qpage.Pool
	closed atomic.Bool

	// plats caches, per platform name, the pieces of a cluster a session
	// actually retains — the OPP table, its normalised-frequency axis and
	// the core count. All three are immutable, so every session on one
	// platform shares one copy instead of building (and mostly
	// discarding) a full Cluster per create: the table and axis were two
	// of the larger identical-by-construction lines in the per-session
	// live profile, and the platform registry is small and static, so
	// the cache is bounded.
	plats sync.Map // platform name -> *platInfo

	nextID    atomic.Int64
	decisions atomic.Int64
	forwarded atomic.Int64 // decides relayed to their ring owner (fleet.go)

	// latAgg is the server-wide decision-latency histogram, striped so
	// the per-decide sample never contends on one lock. Sessions are
	// assigned a stripe round-robin at create via stripeCtr.
	latAgg    [latStripes]latStripe
	stripeCtr atomic.Uint64

	// Checkpoint write-amplification accounting: how many session states
	// the sweeps actually wrote vs skipped because nothing had decided
	// since the last write. Under a mostly-idle million-session fleet the
	// skip count is the I/O the dirty-flag fix saves each interval.
	ckptWrites  atomic.Int64
	ckptSkipped atomic.Int64

	// Fleet membership (fleet.go): the table the router pushed, the ring
	// built from it, and one peer client per forwarding target. fleetMu
	// guards all three; fleetEpoch mirrors the installed epoch for the
	// reply hot path.
	fleetMu    sync.RWMutex
	fleet      *fleetView
	peers      map[string]*client.Client
	fleetEpoch atomic.Uint32

	done      chan struct{}
	loopWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// session is one controlled cluster's governor with its serving state.
// mu serialises governor access: a governor mutates learning state in
// Decide, and its determinism contract is a strict observation sequence.
type session struct {
	mu sync.Mutex

	id       string
	govName  string
	platName string
	workload string // metadata: what the session controls (warm-start matching)
	periodS  float64
	seed     int64
	capMW    float64 // thermal_cap_mw; 0 when uncapped
	warmFrom string  // manifest id the session warm-started from, if any

	// gov is what decides: the raw governor, or its ThermalCap wrapper
	// when the session is capped. learner is always the unwrapped
	// governor — checkpointing, warm-starting and learning-stats
	// assertions go through it, so a capped learner keeps its full
	// checkpoint/metrics surface.
	gov     governor.Governor
	learner governor.Governor
	// plat is the session's share of the per-platform immutables (OPP
	// table, normalised-frequency axis, core count) — read-only, owned
	// by the server's platform cache.
	plat   *platInfo
	epochs int64
	// ckptEpochs is the value of epochs when the session's state was last
	// written to the checkpoint store — the dirty flag, expressed as a
	// generation so a decide racing a checkpoint can never mark clean
	// state that was not captured. Guarded by mu.
	ckptEpochs int64
	// lat is the decision latency histogram in µs, guarded by mu. It is
	// built lazily on the first decide: a created-but-idle session (the
	// bulk of a fleet at peak churn) should not carry ~600 B of empty
	// bins. Metrics rendering treats nil as the empty histogram.
	lat *stats.Histogram
	// stripe is the server-wide aggregate histogram shard this session's
	// decisions also land in — assigned at create, immutable after.
	stripe *latStripe
	// dead marks a deleted session whose pooled learning state has been
	// released. Guarded by mu: an in-flight decide that still holds the
	// pointer must observe it and error instead of faulting released
	// pages back out of the pool.
	dead bool
}

// New builds a Server, sweeps its checkpoint store of unrestorable
// state, and starts the periodic checkpoint loop when configured.
// Callers must Close it.
func New(opt Options) *Server {
	if opt.DefaultPlatform == "" {
		opt.DefaultPlatform = "a15"
	}
	if opt.DefaultPeriodS <= 0 {
		opt.DefaultPeriodS = 0.040
	}
	ckpt := opt.Checkpoints
	if ckpt == nil && opt.CheckpointDir != "" {
		d, err := sessionstore.NewDir(opt.CheckpointDir)
		if err != nil {
			panic(fmt.Sprintf("serve: %v", err))
		}
		ckpt = d
	}
	store := sessionstore.NewSharded[*session](opt.StoreShards)
	if opt.DisableStoreShrink {
		store.DisableShrink()
	}
	lg := opt.Log
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	tr := opt.Tracer
	if tr == nil {
		tr = trace.New(trace.Options{})
	}
	s := &Server{
		opt:      opt,
		ckpt:     ckpt,
		log:      lg,
		tracer:   tr,
		sessions: store,
		qpool:    qpage.NewPool(),
		peers:    make(map[string]*client.Client),
		done:     make(chan struct{}),
	}
	if ckpt != nil {
		if n, err := s.CompactCheckpoints(); err != nil {
			s.logf("serve: checkpoint compaction: %v", err)
		} else if n > 0 {
			s.logf("serve: compacted %d unrestorable checkpoints", n)
		}
	}
	if ckpt != nil && opt.CheckpointEvery > 0 {
		s.loopWG.Add(1)
		go s.checkpointLoop()
	}
	return s
}

// QPoolStats reports the Q-table page pool: distinct shared pages and
// their bytes right now, and cumulative copy-on-write faults — the
// memory-floor observability /v1/metrics exports.
func (s *Server) QPoolStats() (pages, bytes, faults int64) { return s.qpool.Stats() }

// logf keeps printf-style call sites alive on the structured logger;
// new code should call s.log directly with key/value attrs.
func (s *Server) logf(format string, args ...any) {
	if s.log.Enabled(nil, slog.LevelInfo) {
		s.log.Info(fmt.Sprintf(format, args...))
	}
}

// Tracer exposes the server's span ring, for embedding harnesses and
// the /v1/trace handlers. Never nil.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// DecideLatency merges the aggregate latency stripes into one fresh
// histogram (µs, the shared log geometry) — the O(1)-in-sessions figure
// the Prometheus exposition and the soak harness report. Returns nil
// when no decision has been recorded yet.
func (s *Server) DecideLatency() *stats.Histogram {
	var merged *stats.Histogram
	for i := range s.latAgg {
		st := &s.latAgg[i]
		st.mu.Lock()
		if st.h != nil {
			if merged == nil {
				merged = stats.NewLogHistogram(latHistLoUS, latHistHiUS, latHistBins)
			}
			if err := merged.Merge(st.h); err != nil {
				st.mu.Unlock()
				panic(fmt.Sprintf("serve: latency stripe geometry drifted: %v", err))
			}
		}
		st.mu.Unlock()
	}
	return merged
}

// Close stops the checkpoint sweep and, when a checkpoint store is
// configured, freezes every session one final time — the graceful-
// shutdown half of warm restarts. It is idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.loopWG.Wait()
		s.closed.Store(true)
		s.closePeers()
		if s.ckpt != nil {
			n, e := s.CheckpointAll()
			s.logf("serve: final checkpoint: %d sessions", n)
			s.closeErr = e
		}
	})
	return s.closeErr
}

func (s *Server) checkpointLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opt.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if n, err := s.CheckpointAll(); err != nil {
				s.logf("serve: checkpoint sweep: %v", err)
			} else if n > 0 {
				s.logf("serve: checkpointed %d sessions", n)
			}
		}
	}
}

// SessionCount reports the live session count (what /healthz serves).
func (s *Server) SessionCount() int { return s.sessions.Len() }

// CheckpointCounters reports the sweep's write-amplification accounting:
// session states actually written vs skipped because nothing had decided
// since the last write. The skip count is the I/O the dirty-flag check
// saves; embedding harnesses (the soak runner) read it directly instead
// of scraping /v1/metrics.
func (s *Server) CheckpointCounters() (writes, skipped int64) {
	return s.ckptWrites.Load(), s.ckptSkipped.Load()
}

// snapshotSessions copies the live session set out of the store (Range
// holds shard locks; the work happens on the copy).
func (s *Server) snapshotSessions() []*session {
	all := make([]*session, 0, s.sessions.Len())
	s.sessions.Range(func(_ string, sess *session) bool {
		all = append(all, sess)
		return true
	})
	return all
}

// CheckpointAll freezes every checkpointable session into the checkpoint
// store and returns how many were written. The first error is returned
// after attempting the rest.
func (s *Server) CheckpointAll() (int, error) {
	var n int
	var firstErr error
	for _, sess := range s.snapshotSessions() {
		wrote, err := s.checkpointSession(sess)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if wrote {
			n++
		}
	}
	return n, firstErr
}

// checkpointSession freezes one session's state to the store; sessions
// whose governor keeps no learnt state (or that have not decided yet)
// are skipped without error. Sessions whose state is already on disk —
// no decide since the last write — are skipped too and counted: under a
// mostly-idle fleet the periodic sweep would otherwise re-serialise and
// re-write every session every interval, and that write amplification
// was the dominant I/O at session scale. The epochs counter read under
// the same lock as SaveState is the dirty generation, so a decide
// landing after the capture re-dirties the session rather than being
// marked clean.
func (s *Server) checkpointSession(sess *session) (bool, error) {
	cp, ok := sess.learner.(governor.Checkpointer)
	if !ok || s.ckpt == nil {
		return false, nil
	}
	var buf bytes.Buffer
	sess.mu.Lock()
	if sess.dead {
		// Deleted since the sweep snapshot: state released, checkpoint
		// being GC'd by the delete — nothing to write.
		sess.mu.Unlock()
		return false, nil
	}
	epochs := sess.epochs
	if epochs == 0 {
		sess.mu.Unlock()
		return false, nil // nothing observed yet; keep any prior state
	}
	if epochs == sess.ckptEpochs && !s.opt.CheckpointEverySession {
		sess.mu.Unlock()
		s.ckptSkipped.Add(1)
		return false, nil // clean: the stored checkpoint already has this state
	}
	err := cp.SaveState(&buf)
	sess.mu.Unlock()
	if err != nil {
		return false, fmt.Errorf("serve: freezing %s: %w", sess.id, err)
	}
	if err := s.ckpt.Save(sess.id, buf.Bytes()); err != nil {
		return false, fmt.Errorf("serve: writing %s checkpoint: %w", sess.id, err)
	}
	s.ckptWrites.Add(1)
	sess.mu.Lock()
	if epochs > sess.ckptEpochs {
		sess.ckptEpochs = epochs
	}
	sess.mu.Unlock()
	s.undoSaveIfDeleted(sess)
	return true, nil
}

// undoSaveIfDeleted closes the sweep-vs-DELETE race: a checkpoint
// captured before a concurrent delete must not survive it (it would
// resurrect "gone" learnt state on the next create). The check is by
// session identity, not id — if the id was deleted AND re-created
// inside the save window, the store holds a different *session and the
// file we just wrote is still the deleted one's state. Re-checking
// after the save makes every interleaving end with the stale file
// absent: whichever of the delete's GC and this cleanup runs last
// removes it.
func (s *Server) undoSaveIfDeleted(sess *session) {
	if cur, live := s.sessions.Get(sess.id); !live || cur != sess {
		if err := s.ckpt.Delete(sess.id); err != nil {
			s.logf("serve: removing checkpoint of deleted %s: %v", sess.id, err)
		}
	}
}

// restorableHeader reports whether frozen state opens with a checkpoint
// envelope some learner could restore: a JSON object carrying a kind tag
// and a positive version — the two fields every governor.Checkpointer
// format in the program leads with. State that fails this check (torn
// writes, truncation, a stray file) can never warm-start a session.
//
// The decode streams and stops at the two header fields (both formats
// emit them first), so a sweep over a large store pays two token reads
// per checkpoint, not a full parse of every value table. Stopping early
// cannot mistake a torn tail for a good checkpoint: a file truncated
// mid-document that still opens with a valid header would fail its real
// LoadState at warm-start, which handles it exactly like a cold create.
func restorableHeader(state []byte) bool {
	dec := json.NewDecoder(bytes.NewReader(state))
	tok, err := dec.Token()
	if err != nil {
		return false
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return false
	}
	var kind string
	var version float64
	var seenKind, seenVersion bool
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return false
		}
		key, _ := keyTok.(string)
		switch key {
		case "kind":
			if dec.Decode(&kind) != nil {
				return false
			}
			seenKind = true
		case "version":
			if dec.Decode(&version) != nil {
				return false
			}
			seenVersion = true
		default:
			var skip json.RawMessage
			if dec.Decode(&skip) != nil {
				return false
			}
		}
		if seenKind && seenVersion {
			return kind != "" && version >= 1
		}
	}
	return false
}

// CompactCheckpoints is the dead-state sweep: it deletes checkpoints no
// session could ever restore from (no restorable header — torn or
// foreign files). It runs automatically in New; replicas sharing a
// store can also invoke it on demand. When a CompactionFilter is
// configured the sweep reads only the ids it owns — on a fleet-sized
// shared store each member pays for its own shards, not the whole
// directory. It returns how many were removed.
func (s *Server) CompactCheckpoints() (int, error) {
	if s.ckpt == nil {
		return 0, nil
	}
	ids, err := s.ckpt.List()
	if err != nil {
		return 0, err
	}
	removed := 0
	var firstErr error
	for _, id := range ids {
		if s.opt.CompactionFilter != nil && !s.opt.CompactionFilter(id) {
			continue // another member's shard; its owner sweeps it
		}
		state, err := s.ckpt.Load(id)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // raced with a delete; already gone
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if restorableHeader(state) {
			continue
		}
		if err := s.ckpt.Delete(id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.logf("serve: compacted unrestorable checkpoint %s", id)
		removed++
	}
	return removed, firstErr
}

// Session ids validate through sessionstore.ValidID — the same rule the
// registry applies to blob-key segments, so no id the serving layer
// accepts can be rejected (or worse, swept as a temp file) downstream
// by a checkpoint store. Both control planes (flat create and the
// router's id assignment) use it.
func validSessionID(id string) bool { return sessionstore.ValidID(id) }

// errBadSessionID is the one copy of the id-rule error message.
func errBadSessionID(id string) error {
	return fmt.Errorf("session id %q must match %s and not start with '.'", id, sessionstore.IDPattern)
}

// platInfo is the per-platform immutable trio a session retains: the OPP
// table, its normalised-frequency axis, and the core count. One instance
// per platform name, shared read-only by every session on it.
type platInfo struct {
	table    platform.OPPTable
	normFreq []float64
	cores    int
}

// platformInfo resolves a platform name to its shared immutables,
// building them once per name from a throwaway cluster (the table and
// core count do not depend on the cluster seed).
func (s *Server) platformInfo(name string) (*platInfo, error) {
	if v, ok := s.plats.Load(name); ok {
		return v.(*platInfo), nil
	}
	plat, err := scenario.PlatformByName(name)
	if err != nil {
		return nil, err
	}
	c := plat.NewCluster(0)
	t := c.Table()
	pi := &platInfo{table: t, normFreq: t.NormFreqs(), cores: c.NumCores()}
	v, _ := s.plats.LoadOrStore(name, pi)
	return v.(*platInfo), nil
}

// createSession builds, optionally calibrates and warm-starts, and
// registers a session. It returns an HTTP status on failure.
func (s *Server) createSession(req createRequest) (*session, int, error) {
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("s%d", s.nextID.Add(1))
	}
	if !validSessionID(id) {
		return nil, 400, errBadSessionID(id)
	}
	if req.Governor == "" {
		return nil, 400, fmt.Errorf("governor is required (one of %v)", governor.Names())
	}
	if req.Governor == "oracle" {
		return nil, 400, fmt.Errorf("the oracle is offline by definition (it needs the whole trace); it cannot serve online")
	}
	gov, err := governor.ByName(req.Governor)
	if err != nil {
		return nil, 400, err
	}

	platName := req.Platform
	if platName == "" {
		platName = s.opt.DefaultPlatform
	}
	plat, err := s.platformInfo(platName)
	if err != nil {
		return nil, 400, err
	}

	periodS := req.PeriodS
	if periodS == 0 {
		periodS = s.opt.DefaultPeriodS
	}
	if !(periodS > 0) || periodS != periodS {
		return nil, 400, fmt.Errorf("period_s %v must be positive", req.PeriodS)
	}

	if req.Workload != "" {
		if _, err := workload.ByName(req.Workload); err != nil {
			return nil, 400, err
		}
	}

	if len(req.CalibrationCC) > 0 {
		rtm, ok := gov.(*core.RTM)
		if !ok {
			return nil, 400, fmt.Errorf("governor %s does not take a workload calibration", req.Governor)
		}
		if err := rtm.Calibrate(req.CalibrationCC); err != nil {
			return nil, 400, err
		}
	}

	// The learner is the raw governor; decisions may go through a
	// ThermalCap wrapper, but checkpointing and stats always reach the
	// learner directly.
	learner := gov
	if req.ThermalCapMW != 0 {
		if !(req.ThermalCapMW > 0) { // rejects negatives and NaN
			return nil, 400, fmt.Errorf("thermal_cap_mw %v must be positive", req.ThermalCapMW)
		}
		// Power-only cap: temperature never trips at +Inf, so the ceiling
		// is governed by the power budget alone.
		gov = &governor.ThermalCap{Inner: gov, TripC: math.Inf(1), PowerCapW: req.ThermalCapMW / 1000}
	}

	// State precedence: inline state, then the session's own checkpoint,
	// then the registry. A session re-created under its old id must
	// resume its exact learnt policy even when the create carries
	// warm_start — its own state is strictly fresher than any published
	// manifest, and "auto" in a steady-state create body must not
	// silently swap it for a foreign policy or a cold start.
	warmFrom := ""
	staged := false
	if len(req.State) > 0 {
		if err := scenario.WarmStart(learner, bytes.NewReader(req.State)); err != nil {
			return nil, 400, err
		}
		// A manifest id riding alongside inline state is provenance, not a
		// lookup: the router's hand-off re-creates a session with its
		// frozen state inline and passes the manifest it originally
		// warm-started from, so /v1/sessions/{id} keeps reporting it.
		if req.WarmStart != "" && req.WarmStart != "auto" {
			warmFrom = req.WarmStart
		}
		staged = true
	}
	if !staged && s.ckpt != nil {
		if state, err := s.ckpt.Load(id); err == nil {
			if err := scenario.WarmStart(learner, bytes.NewReader(state)); err != nil {
				return nil, 500, fmt.Errorf("warm-starting %s from checkpoint: %w", id, err)
			}
			s.logf("serve: session %s warm-started from its checkpoint", id)
			staged = true
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, 500, fmt.Errorf("reading %s checkpoint: %w", id, err)
		}
	}
	if !staged && req.WarmStart != "" {
		state, manifestID, status, err := s.resolveWarmStart(req, platName)
		if err != nil {
			return nil, status, err
		}
		if state != nil {
			if err := scenario.WarmStart(learner, bytes.NewReader(state)); err != nil {
				return nil, 400, fmt.Errorf("warm-starting %s from manifest %s: %w", id, manifestID, err)
			}
			warmFrom = manifestID
			s.logf("serve: session %s warm-started from registry manifest %s", id, manifestID)
		}
	}

	sess := &session{
		id:       id,
		govName:  req.Governor,
		platName: platName,
		workload: req.Workload,
		periodS:  periodS,
		seed:     req.Seed,
		capMW:    req.ThermalCapMW,
		warmFrom: warmFrom,
		gov:      gov,
		learner:  learner,
		plat:     plat,
		stripe:   &s.latAgg[s.stripeCtr.Add(1)%latStripes],
	}
	// Every failure past this point must reap the session: the reset
	// governor holds pooled page references that would otherwise leak.
	if err := resetGovernor(sess, s.qpool); err != nil {
		reapSession(sess)
		return nil, 400, err
	}

	if s.closed.Load() {
		reapSession(sess)
		return nil, 503, fmt.Errorf("server is shutting down")
	}
	if !s.sessions.Put(id, sess) {
		reapSession(sess)
		return nil, 409, fmt.Errorf("session %q already exists", id)
	}
	// A Close racing this create may have missed the session in its
	// final sweep; undo rather than lose learnt state silently.
	if s.closed.Load() {
		s.sessions.Delete(id)
		reapSession(sess)
		return nil, 503, fmt.Errorf("server is shutting down")
	}
	return sess, 0, nil
}

// resolveWarmStart turns a create request's warm_start reference into
// checkpoint state via the registry. "auto" asks for the nearest
// manifest matching the session's fingerprint — exact workload first,
// then any workload trained on the same governor and platform (the
// cross-workload transfer fallback) — and quietly starts cold when the
// registry holds nothing usable ("auto" means warm if the fleet has
// learnt anything, not fail). A manifest id demands exactly that
// checkpoint and errors when it is absent. The returned status is an
// HTTP code on failure.
func (s *Server) resolveWarmStart(req createRequest, platName string) (state []byte, manifestID string, status int, err error) {
	reg := s.opt.Registry
	if reg == nil {
		return nil, "", 400, fmt.Errorf("warm_start %q needs a checkpoint registry, and this server has none configured", req.WarmStart)
	}
	if req.WarmStart == "auto" {
		m, ok, err := reg.Nearest(registry.Fingerprint{
			Governor: req.Governor,
			Workload: req.Workload,
			Platform: platName,
		})
		if err != nil {
			return nil, "", 500, fmt.Errorf("resolving warm_start: %w", err)
		}
		if !ok {
			s.logf("serve: no manifest near %s/%s/%s; starting cold", req.Governor, req.Workload, platName)
			return nil, "", 0, nil
		}
		state, err := reg.StateOf(m)
		if err != nil {
			return nil, "", 500, fmt.Errorf("fetching manifest %s state: %w", m.ID, err)
		}
		return state, m.ID, 0, nil
	}
	// Manifest ids are single key segments; rejecting anything else up
	// front keeps client-controlled input from ever reaching the store's
	// path handling (a slash-bearing "id" would otherwise surface as a
	// storage error, not the 400 it is).
	if !sessionstore.ValidID(req.WarmStart) {
		return nil, "", 400, fmt.Errorf("malformed warm_start manifest id %q", req.WarmStart)
	}
	m, err := reg.Manifest(req.WarmStart)
	if err != nil {
		switch {
		case errors.Is(err, fs.ErrNotExist):
			return nil, "", 404, fmt.Errorf("unknown warm_start manifest %q", req.WarmStart)
		case errors.Is(err, fs.ErrInvalid):
			// A malformed id off the wire is the caller's error, not ours.
			return nil, "", 400, fmt.Errorf("malformed warm_start manifest id %q", req.WarmStart)
		default:
			return nil, "", 500, err
		}
	}
	st, err := reg.StateOf(m)
	if err != nil {
		return nil, "", 500, fmt.Errorf("fetching manifest %s state: %w", m.ID, err)
	}
	return st, m.ID, 0, nil
}

// resetGovernor runs the governor's Reset, converting the panic a
// dimension-mismatched checkpoint raises (the Config.Transfer contract)
// into an error the API can return.
func resetGovernor(sess *session, pool *qpage.Pool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("resetting governor: %v", r)
		}
	}()
	sess.gov.Reset(governor.Context{
		Table:    sess.plat.table,
		NumCores: sess.plat.cores,
		NormFreq: sess.plat.normFreq,
		PeriodS:  sess.periodS,
		Seed:     sess.seed,
		QPool:    pool,
	})
	return nil
}

// reapSession releases a session's pooled learning state exactly once
// (idempotent under the session lock) and marks it dead so an in-flight
// decide still holding the pointer errors instead of touching released
// pages. Called on delete and on every create failure path past Reset.
func reapSession(sess *session) {
	sess.mu.Lock()
	if !sess.dead {
		sess.dead = true
		if rel, ok := sess.learner.(governor.StateReleaser); ok {
			rel.ReleaseState()
		}
	}
	sess.mu.Unlock()
}

func (s *Server) session(id string) *session {
	sess, _ := s.sessions.Get(id)
	return sess
}

// sessionFor is the byte-keyed twin of session for the binary transport:
// the store's byte-keyed lookup needs no conversion allocation, keeping
// the TCP decode→decide path allocation-free.
func (s *Server) sessionFor(id []byte) *session {
	sess, _ := s.sessions.GetBytes(id)
	return sess
}

// deleteSession drops the session, returns its shared Q-table pages to
// the pool, and garbage-collects its checkpoint — DELETE means gone, not
// "resurrectable from a state file the operator must remember to remove".
// Unmapping from the store first means no new decide can find the
// session; reapSession's dead flag closes the race with decides already
// holding the pointer.
func (s *Server) deleteSession(id string) bool {
	sess, ok := s.sessions.Delete(id)
	if !ok {
		return false
	}
	reapSession(sess)
	if s.ckpt != nil {
		if err := s.ckpt.Delete(id); err != nil {
			s.logf("serve: deleting %s checkpoint: %v", id, err)
		}
	}
	return true
}

// decide serialises one decision on the session and records its latency
// (µs under the session lock, the figure /v1/metrics reports). Governor
// panics (a malformed observation hitting a harness-bug assertion) are
// contained per call so one bad request cannot take the server down.
func (sess *session) decide(obs governor.Observation) (idx int, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.dead {
		// Deleted while this request was in flight: its learning state is
		// back in the pool, so the decide must refuse, exactly as if the
		// lookup had missed.
		return -1, errUnknownSession(sess.id)
	}
	if sess.lat == nil {
		sess.lat = stats.NewLogHistogram(latHistLoUS, latHistHiUS, latHistBins)
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("governor rejected the observation: %v", r)
		}
		us := float64(time.Since(start)) / float64(time.Microsecond)
		sess.lat.Add(us)
		if sess.stripe != nil {
			sess.stripe.add(us)
		}
	}()
	idx = sess.gov.Decide(obs)
	sess.epochs++
	return idx, nil
}
