package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestQTableInitAndShape(t *testing.T) {
	q := NewQTable(25, 19, -1)
	if q.States() != 25 || q.Actions() != 19 {
		t.Fatalf("shape %dx%d", q.States(), q.Actions())
	}
	for s := 0; s < 25; s++ {
		for a := 0; a < 19; a++ {
			if q.Q(s, a) != -1 {
				t.Fatalf("Q(%d,%d) = %v, want -1", s, a, q.Q(s, a))
			}
			if q.Visits(s, a) != 0 {
				t.Fatal("fresh table has visits")
			}
		}
	}
}

func TestQTableUpdateBellman(t *testing.T) {
	q := NewQTable(2, 2, 0)
	// Next state max is 0 everywhere; R=1, alpha=0.5:
	// Q = 0.5*0 + 0.5*(1 + 0.9*0) = 0.5
	q.Update(0, 0, 1, 1, 0.5, 0.9)
	if got := q.Q(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("after update Q = %v, want 0.5", got)
	}
	if q.Visits(0, 0) != 1 {
		t.Fatal("visit not counted")
	}
	// Raise next state's best value and update again:
	// Q = 0.5*0.5 + 0.5*(1 + 0.9*2) = 0.25 + 1.4 = 1.65
	q.Update(1, 1, 4, 0, 1.0, 0) // sets Q(1,1)=4 directly (alpha=1, no future)
	q.Update(0, 0, 1, 1, 0.5, 0.9)
	if got := q.Q(0, 0); math.Abs(got-(0.25+0.5*(1+0.9*4))) > 1e-12 {
		t.Fatalf("second update Q = %v", got)
	}
}

func TestQTableBestActionTieBreaksLow(t *testing.T) {
	q := NewQTable(1, 4, 0)
	if got := q.BestAction(0); got != 0 {
		t.Fatalf("all-equal tie broke to %d, want 0 (slowest OPP)", got)
	}
	q.Update(0, 2, 5, 0, 1, 0)
	if got := q.BestAction(0); got != 2 {
		t.Fatalf("BestAction = %d, want 2", got)
	}
}

func TestQTableGreedyPolicy(t *testing.T) {
	q := NewQTable(3, 3, 0)
	q.Update(0, 1, 1, 0, 1, 0)
	q.Update(1, 2, 1, 0, 1, 0)
	pol := q.GreedyPolicy()
	want := []int{1, 2, 0}
	for i := range want {
		if pol[i] != want[i] {
			t.Fatalf("policy = %v, want %v", pol, want)
		}
	}
}

func TestQTableRowIsCopy(t *testing.T) {
	q := NewQTable(1, 2, 0)
	row := q.Row(0)
	row[0] = 99
	if q.Q(0, 0) == 99 {
		t.Fatal("Row returned a live reference")
	}
}

func TestQTablePanics(t *testing.T) {
	q := NewQTable(2, 2, 0)
	cases := []func(){
		func() { q.Q(-1, 0) },
		func() { q.Q(2, 0) },
		func() { q.Q(0, 2) },
		func() { q.MaxQ(5) },
		func() { NewQTable(0, 1, 0) },
		func() { NewQTable(1, 0, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQTableSaveLoadRoundTrip(t *testing.T) {
	q := NewQTable(4, 3, -1)
	q.Update(1, 2, 0.7, 2, 0.5, 0.9)
	q.Update(3, 0, -0.2, 1, 0.5, 0.9)
	// Revisit one pair several times so the round-trip covers visit counts
	// beyond 0/1 — the visit-decayed learning rate depends on them.
	for i := 0; i < 7; i++ {
		q.Update(1, 2, 0.1*float64(i), 0, 0.5, 0.9)
	}
	if q.Visits(1, 2) != 8 {
		t.Fatalf("setup: Visits(1,2) = %d, want 8", q.Visits(1, 2))
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.States() != 4 || got.Actions() != 3 {
		t.Fatalf("loaded shape %dx%d", got.States(), got.Actions())
	}
	for s := 0; s < 4; s++ {
		for a := 0; a < 3; a++ {
			if got.Q(s, a) != q.Q(s, a) {
				t.Fatalf("Q(%d,%d) %v != %v", s, a, got.Q(s, a), q.Q(s, a))
			}
			if got.Visits(s, a) != q.Visits(s, a) {
				t.Fatalf("Visits(%d,%d) differ", s, a)
			}
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":        "hello",
		"size mismatch":   `{"states":2,"actions":2,"q":[1,2,3],"visits":[0,0,0]}`,
		"zero states":     `{"states":0,"actions":2,"q":[],"visits":[]}`,
		"visits mismatch": `{"states":1,"actions":2,"q":[1,2],"visits":[0]}`,
		"negative visits": `{"states":1,"actions":2,"q":[1,2],"visits":[0,-3]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%s) accepted", name)
		}
	}
}

// A NaN or ±Inf Q-value would poison every max/argmax computed from its
// row, silently corrupting the policy — Load must reject the whole table.
// JSON text cannot spell NaN, so the reachable vectors are out-of-range
// numbers (hand-edited files, other tools); the explicit finite check in
// UnmarshalJSON additionally guards any future decode path.
func TestLoadRejectsPoisonedQValues(t *testing.T) {
	cases := map[string]string{
		"+Inf": `{"states":1,"actions":2,"q":[1e999,1],"visits":[0,0]}`,
		"-Inf": `{"states":1,"actions":2,"q":[-1e999,1],"visits":[0,0]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%s) accepted a poisoned table", name)
		}
	}
}

// Property: with rewards bounded in [lo, hi] and discount γ < 1, Q-values
// remain bounded by the usual RL bound max(|init|, max(|lo|,|hi|)/(1−γ)).
func TestQValueBoundedProperty(t *testing.T) {
	f := func(seed int64, updates []uint16) bool {
		const (
			states, actions = 6, 5
			alpha, discount = 0.5, 0.9
			rLo, rHi        = -2.0, 1.0
			initQ           = -1.0
		)
		q := NewQTable(states, actions, initQ)
		bound := math.Max(math.Abs(initQ), math.Max(-rLo, rHi)/(1-discount)) + 1e-9
		x := uint64(seed)
		next := func(n int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int((x >> 33) % uint64(n))
		}
		for _, u := range updates {
			s, a, ns := next(states), next(actions), next(states)
			r := rLo + float64(u%1000)/999*(rHi-rLo)
			q.Update(s, a, r, ns, alpha, discount)
			if math.Abs(q.Q(s, a)) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
