package ring_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"qgov/internal/ring"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cluster-%d", i)
	}
	return out
}

// Placement must be a pure function of the member set: insertion order,
// prior removals, and the goroutine computing the lookup must all be
// invisible. Concurrent readers across GOMAXPROCS workers must agree
// with a serial oracle (run under -race this also proves Owner is a
// read-only operation).
func TestDeterministicPlacement(t *testing.T) {
	members := []string{"replica-a", "replica-b", "replica-c", "replica-d"}
	ks := keys(5000)

	oracle := ring.New(0, members...)
	want := make(map[string]string, len(ks))
	for _, k := range ks {
		o, ok := oracle.Owner(k)
		if !ok {
			t.Fatal("owner lookup failed on a populated ring")
		}
		want[k] = o
	}

	// Same members, different construction histories.
	permuted := ring.New(0, "replica-d", "replica-b", "replica-a", "replica-c")
	churned := ring.New(0, members...)
	churned.Add("replica-x")
	churned.Remove("replica-x")
	for _, r := range []*ring.Ring{permuted, churned} {
		for _, k := range ks {
			if o, _ := r.Owner(k); o != want[k] {
				t.Fatalf("placement of %q depends on construction history: %q vs %q", k, o, want[k])
			}
		}
	}

	// Concurrent lookups from every processor agree with the oracle.
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ks); i += workers {
				if o, _ := oracle.Owner(ks[i]); o != want[ks[i]] {
					errs <- fmt.Errorf("worker %d: %q placed on %q, want %q", w, ks[i], o, want[ks[i]])
					return
				}
				if o, _ := oracle.OwnerBytes([]byte(ks[i])); o != want[ks[i]] {
					errs <- fmt.Errorf("worker %d: byte lookup of %q diverged", w, ks[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Removing one of N members must reassign only that member's keys — no
// key may move between two survivors — and the departed member's share
// must be under 2/N of all keys (the virtual nodes keep shares near 1/N).
func TestBoundedMovementOnRemove(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("replica-%d", i)
			}
			ks := keys(20000)
			r := ring.New(0, members...)
			before := make(map[string]string, len(ks))
			for _, k := range ks {
				before[k], _ = r.Owner(k)
			}

			leaving := members[1]
			if !r.Remove(leaving) {
				t.Fatalf("Remove(%q) reported absent", leaving)
			}
			moved := 0
			for _, k := range ks {
				after, ok := r.Owner(k)
				if !ok {
					t.Fatal("owner lookup failed after removal")
				}
				if before[k] == leaving {
					moved++
					if after == leaving {
						t.Fatalf("%q still owned by the departed member", k)
					}
					continue
				}
				if after != before[k] {
					t.Fatalf("%q moved between survivors: %q → %q", k, before[k], after)
				}
			}
			bound := 2 * len(ks) / n
			if moved >= bound {
				t.Errorf("%d of %d keys moved when 1 of %d members left; bound is %d (< 2/N)",
					moved, len(ks), n, bound)
			}
			if moved == 0 {
				t.Error("no keys moved; the departed member owned nothing")
			}
		})
	}
}

// Adding a member steals keys only for itself: every key either keeps
// its owner or lands on the newcomer.
func TestAddStealsOnlyForItself(t *testing.T) {
	r := ring.New(0, "replica-0", "replica-1", "replica-2")
	ks := keys(10000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k], _ = r.Owner(k)
	}
	if !r.Add("replica-3") {
		t.Fatal("Add reported duplicate")
	}
	stolen := 0
	for _, k := range ks {
		after, _ := r.Owner(k)
		if after != before[k] {
			if after != "replica-3" {
				t.Fatalf("%q moved between incumbents: %q → %q", k, before[k], after)
			}
			stolen++
		}
	}
	if stolen == 0 {
		t.Error("newcomer owns no keys")
	}
	if stolen >= 2*len(ks)/4 {
		t.Errorf("newcomer stole %d of %d keys; expected near 1/4", stolen, len(ks))
	}
}

// Every member must hold a non-trivial share — virtual nodes are what
// keeps the max/min owner ratio bounded.
func TestShareBalance(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r := ring.New(0, members...)
	counts := make(map[string]int)
	rng := rand.New(rand.NewSource(42))
	const total = 50000
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("s-%d-%d", rng.Int63(), i)
		o, _ := r.Owner(k)
		counts[o]++
	}
	ideal := total / len(members)
	for _, m := range members {
		if counts[m] < ideal/2 || counts[m] > 2*ideal {
			t.Errorf("member %s owns %d keys, ideal %d (outside [1/2, 2]× band)", m, counts[m], ideal)
		}
	}
}

func TestEmptyAndMembership(t *testing.T) {
	r := ring.New(16)
	if _, ok := r.Owner("k"); ok {
		t.Error("empty ring returned an owner")
	}
	if r.Len() != 0 {
		t.Errorf("empty ring Len = %d", r.Len())
	}
	if !r.Add("only") || r.Add("only") {
		t.Error("Add duplicate handling broken")
	}
	if o, ok := r.Owner("anything"); !ok || o != "only" {
		t.Errorf("single-member ring placed on %q", o)
	}
	got := r.Members()
	if len(got) != 1 || got[0] != "only" {
		t.Errorf("Members = %v", got)
	}
	if r.Remove("ghost") {
		t.Error("Remove of absent member reported true")
	}
	if !r.Remove("only") || r.Len() != 0 {
		t.Error("Remove of last member broken")
	}
}
